package graph

// LongestValidPath implements the path extraction of HIOS-LP (Algorithm 1,
// line 5 of the paper).
//
// Given the set of still-unscheduled operators G' (unscheduled[v] == true),
// it finds the longest path P through unscheduled operators such that every
// intermediate vertex of P — every vertex except the first and the last —
// has no edge from or to any already-scheduled operator. The first and last
// vertices may touch the scheduled region, and when they do, the heaviest
// such boundary edge counts toward the path length (the paper's example
// path P2 = {e2, v3, e4, v5, e6} includes the boundary edges e2 and e6).
//
// Path length is the sum of the execution times of the path's unscheduled
// vertices plus the transfer times of all edges on the path, boundary edges
// included: the path is measured at its worst-case placement, where every
// adjacent pair would sit on different GPUs (§IV-A).
//
// The returned slice holds the unscheduled vertices of the path in
// topological order, together with the path's length. If no unscheduled
// vertex exists, it returns (nil, 0).
//
// Complexity: O(|V| + |E|) per call via dynamic programming over the
// cached topological order, improving on the O(|V|²·|E|) bound the paper
// states. This is the one-shot form; HIOS-LP extracts one path per
// mapping round over the same graph and holds a PathFinder so the
// per-call scratch is reused.
//
// Root annotation: HIOS-LP holds a PathFinder and calls Find directly, so
// no static in-module hot caller reaches this wrapper — it is hot through
// external callers and benchmarks only.
//
//lint:hotpath
func (g *Graph) LongestValidPath(unscheduled []bool) ([]OpID, float64) {
	var pf PathFinder
	return pf.Find(g, unscheduled)
}

// PathFinder holds the scratch buffers of LongestValidPath so repeated
// extractions over one graph run without per-call allocation. The zero
// value is ready to use. Not safe for concurrent use.
type PathFinder struct {
	boundary   []bool
	startBonus []float64
	endBonus   []float64
	ext        []float64
	parent     []OpID
	rev        []OpID
	path       []OpID
}

// Find is LongestValidPath with reusable scratch. The returned slice
// aliases the finder's scratch and is valid until the next Find call;
// callers that retain it must copy it.
//
// The adjacency callbacks below are allocated once per call (not per
// vertex): each captures the shared cursor cur instead of the sweep's
// loop variable.
func (pf *PathFinder) Find(g *Graph, unscheduled []bool) ([]OpID, float64) {
	n := len(g.ops)
	if !g.finalized {
		panic("graph: LongestValidPath before Finalize")
	}
	order := g.topo

	// boundary[v]: v (unscheduled) has at least one edge to or from a
	// scheduled vertex, so it may only appear as the path's first or
	// last vertex.
	// startBonus[v]: heaviest incoming edge from a scheduled vertex —
	// claimable when v is the path's first vertex.
	// endBonus[v]: heaviest outgoing edge to a scheduled vertex —
	// claimable when v is the path's last vertex.
	pf.boundary = growScratch(pf.boundary, n)
	pf.startBonus = growScratch(pf.startBonus, n)
	pf.endBonus = growScratch(pf.endBonus, n)
	for v := 0; v < n; v++ {
		pf.boundary[v] = false
		pf.startBonus[v] = 0
		pf.endBonus[v] = 0
	}
	var cur OpID
	markPred := func(from OpID, transfer float64) {
		if !unscheduled[from] {
			pf.boundary[cur] = true
			if transfer > pf.startBonus[cur] {
				pf.startBonus[cur] = transfer
			}
		}
	}
	markSucc := func(to OpID, transfer float64) {
		if !unscheduled[to] {
			pf.boundary[cur] = true
			if transfer > pf.endBonus[cur] {
				pf.endBonus[cur] = transfer
			}
		}
	}
	for v := 0; v < n; v++ {
		if !unscheduled[v] {
			continue
		}
		cur = OpID(v)
		g.Preds(cur, markPred)
		g.Succs(cur, markSucc)
	}

	// ext[v]: length of the longest valid path ending at v in which every
	// vertex except the path's first and v itself is interior-safe
	// (non-boundary). Such a path can still be extended past v only if v
	// itself is non-boundary; predecessors enforce that via extendFrom.
	// parent[v]: predecessor of v on that path (None when v starts it).
	pf.ext = growScratch(pf.ext, n)
	pf.parent = growScratch(pf.parent, n)
	for v := 0; v < n; v++ {
		pf.ext[v] = 0
		pf.parent[v] = None
	}

	extend := func(from OpID, transfer float64) {
		if !unscheduled[from] {
			return
		}
		// Extending through `from` makes it an interior vertex
		// of any longer path — unless `from` is the first
		// vertex. A boundary predecessor may therefore only
		// contribute as a path start: its usable length is the
		// single-vertex path (with its own start bonus).
		extendFrom := pf.ext[from]
		if pf.boundary[from] {
			extendFrom = g.ops[from].Time + pf.startBonus[from]
		}
		if l := g.ops[cur].Time + transfer + extendFrom; l > pf.ext[cur] {
			pf.ext[cur] = l
			pf.parent[cur] = from
		}
	}

	bestEnd := None
	bestLen := 0.0
	for _, v := range order {
		if !unscheduled[v] {
			continue
		}
		// Base case: the path starts at v; the incoming boundary edge
		// (if any) counts because v is the first vertex.
		pf.ext[v] = g.ops[v].Time + pf.startBonus[v]
		cur = v
		g.Preds(v, extend)
		// Candidate full path ending at v: add the outgoing boundary
		// edge, since v is the last vertex.
		if total := pf.ext[v] + pf.endBonus[v]; bestEnd == None || total > bestLen {
			bestEnd, bestLen = v, total
		}
	}
	if bestEnd == None {
		return nil, 0
	}

	// Reconstruct. Note: if bestEnd's recorded parent chain passed
	// through a boundary vertex, that vertex was charged as a path
	// start, and the chain correctly terminates there because its
	// parent pointer is only followed when ext (not the start-only
	// length) was used. We must therefore cut the walk at the first
	// boundary vertex after the end vertex.
	pf.rev = growScratch(pf.rev, n)[:0]
	v := bestEnd
	for {
		pf.rev = append(pf.rev, v)
		p := pf.parent[v]
		if p == None {
			break
		}
		if pf.boundary[p] {
			// p contributed as a path start; include it and stop.
			pf.rev = append(pf.rev, p)
			break
		}
		v = p
	}
	pf.path = growScratch(pf.path, len(pf.rev))
	for i, id := range pf.rev {
		pf.path[len(pf.rev)-1-i] = id
	}
	return pf.path, bestLen
}

// growScratch returns buf resized to n, reusing its backing array when
// large enough. Contents are unspecified.
func growScratch[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}
