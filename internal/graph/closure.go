package graph

import "math/bits"

// Closure is the transitive closure of a finalized graph as two bitset
// matrices: row v of fwd holds the descendants of v (every vertex
// reachable from v by a path of length >= 1), row v of bwd holds its
// ancestors. One row is ceil(n/64) words, so the whole structure costs
// 2·n·ceil(n/64) words and builds in O(V·E/64) with word-parallel ORs
// over the cached topological order.
//
// A Closure is immutable once built and therefore safe for concurrent
// use. It is obtained from Graph.Closure, which caches it on the graph:
// finalized graphs cannot be mutated (AddOp and AddEdge panic after
// Finalize), so a cached closure can never go stale. If the graph
// construction API ever grows post-finalize mutation, the mutator must
// drop the cached closure (and the cached topological order) as part of
// the same change — that is the invalidation contract; see DESIGN.md
// §12.
type Closure struct {
	n     int
	words int
	fwd   []uint64
	bwd   []uint64
}

// Closure returns the graph's transitive closure, building and caching
// it on first use. The graph must be finalized. Concurrent first calls
// may race to build; every build is deterministic and identical, so
// whichever publication wins is correct (the loser's work is discarded).
func (g *Graph) Closure() *Closure {
	if c := g.closure.Load(); c != nil {
		return c
	}
	if !g.finalized {
		panic("graph: Closure before Finalize")
	}
	c := g.buildClosure()
	g.closure.Store(c)
	return c
}

// buildClosure runs the bitset dynamic program: descendants in reverse
// topological order (a vertex's row is the OR of each successor's bit
// and row), ancestors symmetrically in forward order.
func (g *Graph) buildClosure() *Closure {
	n := len(g.ops)
	words := (n + 63) / 64
	c := &Closure{
		n:     n,
		words: words,
		fwd:   make([]uint64, n*words),
		bwd:   make([]uint64, n*words),
	}
	order := g.topo
	for i := n - 1; i >= 0; i-- {
		v := int(order[i])
		row := c.fwd[v*words : (v+1)*words]
		for _, a := range g.succ[v] {
			u := int(a.op)
			row[u>>6] |= 1 << (uint(u) & 63)
			urow := c.fwd[u*words : (u+1)*words]
			for w := range row {
				row[w] |= urow[w]
			}
		}
	}
	for i := 0; i < n; i++ {
		v := int(order[i])
		row := c.bwd[v*words : (v+1)*words]
		for _, a := range g.pred[v] {
			u := int(a.op)
			row[u>>6] |= 1 << (uint(u) & 63)
			urow := c.bwd[u*words : (u+1)*words]
			for w := range row {
				row[w] |= urow[w]
			}
		}
	}
	return c
}

// Reachable reports whether there is a directed path of length >= 1
// from u to v. O(1): one bit probe.
func (c *Closure) Reachable(u, v OpID) bool {
	return c.fwd[int(u)*c.words+int(v)>>6]&(1<<(uint(v)&63)) != 0
}

// Independent reports whether neither u reaches v nor v reaches u, so
// the two operators may execute concurrently.
func (c *Closure) Independent(u, v OpID) bool {
	return u != v && !c.Reachable(u, v) && !c.Reachable(v, u)
}

// AllIndependent reports whether the operators are pairwise independent.
// O(k²) bit probes for k operators.
func (c *Closure) AllIndependent(ids []OpID) bool {
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if ids[i] == ids[j] || c.Reachable(ids[i], ids[j]) || c.Reachable(ids[j], ids[i]) {
				return false
			}
		}
	}
	return true
}

// NumDescendants returns the number of vertices reachable from v
// (excluding v itself): one popcount sweep over v's row.
func (c *Closure) NumDescendants(v OpID) int {
	row := c.fwd[int(v)*c.words : (int(v)+1)*c.words]
	s := 0
	for _, w := range row {
		s += bits.OnesCount64(w)
	}
	return s
}

// NumAncestors returns the number of vertices from which v is reachable
// (excluding v itself).
func (c *Closure) NumAncestors(v OpID) int {
	row := c.bwd[int(v)*c.words : (int(v)+1)*c.words]
	s := 0
	for _, w := range row {
		s += bits.OnesCount64(w)
	}
	return s
}
