package graph

import "sort"

// TopoOrder returns a topological order of all operators (Kahn's algorithm,
// smallest-ID-first for determinism). It returns ErrCycle if the graph is
// not acyclic.
//
// On a finalized graph the order is computed once by Finalize and the
// cached slice is returned; callers must not modify it.
func (g *Graph) TopoOrder() ([]OpID, error) {
	if g.topo != nil {
		return g.topo, nil
	}
	return g.computeTopoOrder()
}

// computeTopoOrder runs the Kahn sweep. Finalize calls it once to
// validate acyclicity and populate the cache behind TopoOrder.
func (g *Graph) computeTopoOrder() ([]OpID, error) {
	n := len(g.ops)
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(g.pred[v])
	}
	// Min-heap on OpID keeps the order deterministic and stable across
	// runs; a plain slice with sort is fine at these sizes.
	ready := make([]OpID, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			ready = append(ready, OpID(v))
		}
	}
	order := make([]OpID, 0, n)
	for len(ready) > 0 {
		// Pop the smallest ready ID.
		best := 0
		for i := 1; i < len(ready); i++ {
			if ready[i] < ready[best] {
				best = i
			}
		}
		v := ready[best]
		ready[best] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, v)
		for _, a := range g.succ[v] {
			indeg[a.op]--
			if indeg[a.op] == 0 {
				ready = append(ready, a.op)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// PriorityIndicators computes p(v) for every operator: the length of the
// longest path from v to a sink in the graph, where length counts both
// vertex weights (execution times) and edge weights (transfer times),
// including t(v) itself. Descending p(v) is a valid topological order when
// all execution times are positive (HIOS relies on this; see §IV-A of the
// paper).
func (g *Graph) PriorityIndicators() []float64 {
	order, err := g.TopoOrder()
	if err != nil {
		panic("graph: PriorityIndicators on cyclic graph: " + err.Error())
	}
	p := make([]float64, len(g.ops))
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		best := 0.0
		// Direct adjacency iteration: the Succs callback form would
		// allocate one closure per operator (it captures best and p).
		for _, a := range g.succ[v] {
			if l := g.edges[a.edge].Time + p[a.op]; l > best {
				best = l
			}
		}
		p[v] = g.ops[v].Time + best
	}
	return p
}

// CriticalPathLength returns the length of the longest weighted path in the
// graph (vertex + edge weights): max over sources of p(v). It upper-bounds
// the best multi-GPU latency when every hop pays its transfer, and the
// vertex-weight-only variant (see CriticalComputeLength) lower-bounds any
// schedule's latency.
func (g *Graph) CriticalPathLength() float64 {
	p := g.PriorityIndicators()
	best := 0.0
	for _, x := range p {
		if x > best {
			best = x
		}
	}
	return best
}

// CriticalComputeLength returns the longest path counting only vertex
// weights (no transfer times). No schedule, on any number of GPUs, can beat
// this latency, because dependent operators can never overlap.
func (g *Graph) CriticalComputeLength() float64 {
	order, err := g.TopoOrder()
	if err != nil {
		panic("graph: CriticalComputeLength on cyclic graph: " + err.Error())
	}
	p := make([]float64, len(g.ops))
	best := 0.0
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		m := 0.0
		g.Succs(v, func(to OpID, _ float64) {
			if p[to] > m {
				m = p[to]
			}
		})
		p[v] = g.ops[v].Time + m
		if p[v] > best {
			best = p[v]
		}
	}
	return best
}

// ByPriority returns all operator IDs sorted by descending priority
// indicator; ties break on ascending ID so the order is deterministic.
// The result is a topological order (dependent ops have strictly larger
// priority than their successors when op times are positive; the tie-break
// also keeps independent equal-priority ops stable).
func (g *Graph) ByPriority() []OpID {
	p := g.PriorityIndicators()
	return g.ByPriorityWith(p)
}

// ByPriorityWith sorts operator IDs by descending precomputed priority,
// breaking ties by ascending ID.
func (g *Graph) ByPriorityWith(p []float64) []OpID {
	ids := make([]OpID, len(g.ops))
	for i := range ids {
		ids[i] = OpID(i)
	}
	sort.SliceStable(ids, func(i, j int) bool {
		if p[ids[i]] != p[ids[j]] { //lint:floatexact comparator tie-break: epsilon would break the strict weak order
			return p[ids[i]] > p[ids[j]]
		}
		return ids[i] < ids[j]
	})
	return ids
}

// Layers partitions the operators into topological levels: layer 0 holds
// the sources, and each operator sits one past its deepest predecessor.
// Used by model builders and the random DAG generator.
func (g *Graph) Layers() [][]OpID {
	order, err := g.TopoOrder()
	if err != nil {
		panic("graph: Layers on cyclic graph: " + err.Error())
	}
	level := make([]int, len(g.ops))
	maxLevel := 0
	for _, v := range order {
		l := 0
		g.Preds(v, func(from OpID, _ float64) {
			if level[from]+1 > l {
				l = level[from] + 1
			}
		})
		level[v] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	layers := make([][]OpID, maxLevel+1)
	for v := range g.ops {
		layers[level[v]] = append(layers[level[v]], OpID(v))
	}
	return layers
}
