package graph

import (
	"math/rand"
	"testing"
)

func benchGraph(n, m int) *Graph {
	rng := rand.New(rand.NewSource(1))
	return randomDAG(rng, n, m)
}

func BenchmarkTopoOrder200(b *testing.B) {
	g := benchGraph(200, 400)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.TopoOrder(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPriorityIndicators200(b *testing.B) {
	g := benchGraph(200, 400)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.PriorityIndicators()
	}
}

func BenchmarkLongestValidPath200(b *testing.B) {
	g := benchGraph(200, 400)
	un := make([]bool, g.NumOps())
	for i := range un {
		un[i] = true
	}
	// Schedule half to exercise the boundary logic.
	for i := 0; i < len(un); i += 2 {
		un[i] = false
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.LongestValidPath(un)
	}
}

func BenchmarkReachable400(b *testing.B) {
	g := benchGraph(400, 800)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Reachable(0, OpID(g.NumOps()-1))
	}
}

func BenchmarkContractionAcyclic200(b *testing.B) {
	g := benchGraph(200, 400)
	c := NewContraction(g)
	c.Group([]OpID{10, 20})
	c.Group([]OpID{30, 40, 50})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !c.Acyclic() {
			b.Fatal("unexpected cycle")
		}
	}
}
