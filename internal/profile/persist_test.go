package profile

import (
	"sort"
	"testing"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/randdag"
	"github.com/shus-lab/hios/internal/sched/lp"
)

func TestSnapshotRoundTrip(t *testing.T) {
	cfg := randdag.Paper()
	cfg.Ops, cfg.Layers, cfg.Deps, cfg.Seed = 30, 5, 60, 8
	g := randdag.MustGenerate(cfg)
	inner := cost.FromGraph(g, cost.DefaultContention())
	tab := NewTable(inner, 1, 1)

	// Profile through a real scheduling run.
	live, err := lp.Schedule(g, tab, lp.Options{GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}

	data, err := tab.Export("random-30")
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := Import(data)
	if err != nil {
		t.Fatal(err)
	}
	if frozen.Model != "random-30" {
		t.Fatalf("model name lost: %q", frozen.Model)
	}

	// Re-scheduling against the frozen profile must reproduce the run
	// exactly: same schedule, same latency, zero misses.
	replay, err := lp.Schedule(g, frozen, lp.Options{GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if replay.Latency != live.Latency {
		t.Fatalf("frozen replay latency %g != live %g", replay.Latency, live.Latency)
	}
	if replay.Schedule.String() != live.Schedule.String() {
		t.Fatal("frozen replay produced a different schedule")
	}
	if frozen.Misses() != 0 {
		t.Fatalf("replay missed %d probes", frozen.Misses())
	}
}

func TestFrozenModelMissAccounting(t *testing.T) {
	frozen, err := Import([]byte(`{"model":"empty"}`))
	if err != nil {
		t.Fatal(err)
	}
	if frozen.OpTime(0) != 0 || frozen.CommTime(0, 1) != 0 {
		t.Fatal("missing probes should price at 0")
	}
	// An unmeasured pair prices as the serial sum of (also missing) ops.
	if frozen.StageTime([]graph.OpID{0, 1}) != 0 {
		t.Fatal("missing stage should serialize missing ops")
	}
	if frozen.Misses() == 0 {
		t.Fatal("misses not counted")
	}
}

func TestFrozenStageFallbackSerializes(t *testing.T) {
	snap := []byte(`{"ops":{"0":2,"1":3}}`)
	frozen, err := Import(snap)
	if err != nil {
		t.Fatal(err)
	}
	if got := frozen.StageTime([]graph.OpID{0, 1}); got != 5 {
		t.Fatalf("fallback stage = %g, want serialized 5", got)
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	if _, err := Import([]byte("{")); err == nil {
		t.Fatal("accepted malformed snapshot")
	}
}

func TestStageSigRoundTrip(t *testing.T) {
	cases := [][]graph.OpID{
		{7, 300, 70000, 2},                         // inline path
		{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 11, 10, 13}, // spills past stageSigInline
		{1 << 40, 3, 1 << 33},                      // IDs above 32 bits survive the encoding
	}
	for _, ops := range cases {
		got := makeStageSig(ops).members()
		want := append([]graph.OpID(nil), ops...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("members(%v) = %v", ops, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("members(%v) = %v, want %v", ops, got, want)
			}
		}
	}
}

func TestStageSigOrderInsensitive(t *testing.T) {
	a := makeStageSig([]graph.OpID{5, 1, 9, 3})
	b := makeStageSig([]graph.OpID{9, 3, 5, 1})
	if a != b {
		t.Fatal("stageSig depends on member order")
	}
	wideA := makeStageSig([]graph.OpID{12, 11, 10, 9, 8, 7, 6, 5, 4, 3})
	wideB := makeStageSig([]graph.OpID{3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	if wideA != wideB {
		t.Fatal("wide stageSig depends on member order")
	}
}
