package profile

import (
	"testing"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/randdag"
	"github.com/shus-lab/hios/internal/sched/lp"
)

func TestSnapshotRoundTrip(t *testing.T) {
	cfg := randdag.Paper()
	cfg.Ops, cfg.Layers, cfg.Deps, cfg.Seed = 30, 5, 60, 8
	g := randdag.MustGenerate(cfg)
	inner := cost.FromGraph(g, cost.DefaultContention())
	tab := NewTable(inner, 1, 1)

	// Profile through a real scheduling run.
	live, err := lp.Schedule(g, tab, lp.Options{GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}

	data, err := tab.Export("random-30")
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := Import(data)
	if err != nil {
		t.Fatal(err)
	}
	if frozen.Model != "random-30" {
		t.Fatalf("model name lost: %q", frozen.Model)
	}

	// Re-scheduling against the frozen profile must reproduce the run
	// exactly: same schedule, same latency, zero misses.
	replay, err := lp.Schedule(g, frozen, lp.Options{GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if replay.Latency != live.Latency {
		t.Fatalf("frozen replay latency %g != live %g", replay.Latency, live.Latency)
	}
	if replay.Schedule.String() != live.Schedule.String() {
		t.Fatal("frozen replay produced a different schedule")
	}
	if frozen.Misses() != 0 {
		t.Fatalf("replay missed %d probes", frozen.Misses())
	}
}

func TestFrozenModelMissAccounting(t *testing.T) {
	frozen, err := Import([]byte(`{"model":"empty"}`))
	if err != nil {
		t.Fatal(err)
	}
	if frozen.OpTime(0) != 0 || frozen.CommTime(0, 1) != 0 {
		t.Fatal("missing probes should price at 0")
	}
	// An unmeasured pair prices as the serial sum of (also missing) ops.
	if frozen.StageTime([]graph.OpID{0, 1}) != 0 {
		t.Fatal("missing stage should serialize missing ops")
	}
	if frozen.Misses() == 0 {
		t.Fatal("misses not counted")
	}
}

func TestFrozenStageFallbackSerializes(t *testing.T) {
	snap := []byte(`{"ops":{"0":2,"1":3}}`)
	frozen, err := Import(snap)
	if err != nil {
		t.Fatal(err)
	}
	if got := frozen.StageTime([]graph.OpID{0, 1}); got != 5 {
		t.Fatalf("fallback stage = %g, want serialized 5", got)
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	if _, err := Import([]byte("{")); err == nil {
		t.Fatal("accepted malformed snapshot")
	}
}

func TestStageKeyRoundTrip(t *testing.T) {
	ops := []graph.OpID{7, 300, 70000, 2}
	got := decodeStageKey(stageKey(ops))
	want := []graph.OpID{2, 7, 300, 70000} // stageKey sorts
	if len(got) != len(want) {
		t.Fatalf("decode = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("decode = %v, want %v", got, want)
		}
	}
}
