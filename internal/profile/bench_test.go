package profile

import (
	"testing"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/randdag"
	"github.com/shus-lab/hios/internal/units"
)

// BenchmarkStageSig measures the cost of building the memoization key for
// a typical 4-operator stage probe. The byte-string key this replaced
// allocated twice per probe (the sorted copy and the string); the inline
// stageSig performs zero heap allocations — check allocs/op with
// `go test -bench StageSig -benchmem ./internal/profile`.
func BenchmarkStageSig(b *testing.B) {
	ops := []graph.OpID{17, 4, 199, 42}
	b.ReportAllocs()
	b.ResetTimer()
	var sink stageSig
	for i := 0; i < b.N; i++ {
		sink = makeStageSig(ops)
	}
	_ = sink
}

// BenchmarkStageSigWide exercises the spill path (> stageSigInline
// members), which pays the sorted copy plus one string — acceptable
// because no scheduler probes stages this wide (IOS caps at MaxStage = 8).
func BenchmarkStageSigWide(b *testing.B) {
	ops := []graph.OpID{12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1}
	b.ReportAllocs()
	b.ResetTimer()
	var sink stageSig
	for i := 0; i < b.N; i++ {
		sink = makeStageSig(ops)
	}
	_ = sink
}

// BenchmarkStageTimeHit measures a memoized stage probe end to end: key
// build + read-locked lookup. This is the table's steady state inside the
// IOS dynamic program and must stay allocation-free.
func BenchmarkStageTimeHit(b *testing.B) {
	cfg := randdag.Paper()
	cfg.Ops, cfg.Layers, cfg.Deps, cfg.Seed = 50, 5, 100, 3
	g := randdag.MustGenerate(cfg)
	tab := NewTable(cost.FromGraph(g, cost.DefaultContention()), 1, 1)
	ops := []graph.OpID{3, 9, 21, 33}
	tab.StageTime(ops) // memoize
	b.ReportAllocs()
	b.ResetTimer()
	var sink units.Millis
	for i := 0; i < b.N; i++ {
		sink = tab.StageTime(ops)
	}
	_ = sink
}
