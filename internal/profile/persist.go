package profile

import (
	"encoding/json"
	"fmt"
	"sort"

	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/units"
)

// The paper's scheduler profiles a model once and reuses the measurements
// across scheduling runs; this file provides the corresponding artifact:
// a JSON snapshot of every memoized probe, loadable as a standalone cost
// model that never re-measures.

// Snapshot is the serialized form of a CostTable's measurements.
type Snapshot struct {
	// Model optionally names the profiled network.
	Model string `json:"model"`
	// Warmup and Repeats record the measurement discipline.
	Warmup  int `json:"warmup"`
	Repeats int `json:"repeats"`
	// Ops maps operator ID -> t(v) in milliseconds.
	Ops map[graph.OpID]units.Millis `json:"ops"`
	// Comms lists measured transfers.
	Comms []CommEntry `json:"comms"`
	// Stages lists measured concurrent groups.
	Stages []StageEntry `json:"stages"`
}

// CommEntry is one measured transfer t(u, v).
type CommEntry struct {
	From graph.OpID   `json:"from"`
	To   graph.OpID   `json:"to"`
	Ms   units.Millis `json:"ms"`
}

// StageEntry is one measured concurrent group t(S).
type StageEntry struct {
	Ops []graph.OpID `json:"ops"`
	Ms  units.Millis `json:"ms"`
}

// Export serializes every measurement the table has performed so far.
func (t *CostTable) Export(model string) ([]byte, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	snap := Snapshot{
		Model:   model,
		Warmup:  t.warmup,
		Repeats: t.repeats,
		//lint:locksafe snapshot clone: the copy must allocate while the read lock pins the table, and Export is a cold serialization path
		Ops: make(map[graph.OpID]units.Millis, len(t.ops)),
	}
	for k, v := range t.ops {
		snap.Ops[k] = v
	}
	for k, v := range t.comms {
		snap.Comms = append(snap.Comms, CommEntry{From: k[0], To: k[1], Ms: v})
	}
	sort.Slice(snap.Comms, func(i, j int) bool {
		if snap.Comms[i].From != snap.Comms[j].From {
			return snap.Comms[i].From < snap.Comms[j].From
		}
		return snap.Comms[i].To < snap.Comms[j].To
	})
	for k, v := range t.stages {
		snap.Stages = append(snap.Stages, StageEntry{Ops: k.members(), Ms: v})
	}
	sort.Slice(snap.Stages, func(i, j int) bool {
		a, b := snap.Stages[i].Ops, snap.Stages[j].Ops
		for x := 0; x < len(a) && x < len(b); x++ {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return len(a) < len(b)
	})
	return json.MarshalIndent(snap, "", " ")
}

// Import parses a Snapshot into a frozen cost model: lookups hit only the
// recorded measurements, and a probe the profile never performed returns
// an error through the panic-free Missing reporting of FrozenModel.
func Import(data []byte) (*FrozenModel, error) {
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("profile: parsing snapshot: %w", err)
	}
	fm := &FrozenModel{
		Model:  snap.Model,
		ops:    snap.Ops,
		comms:  make(map[[2]graph.OpID]units.Millis, len(snap.Comms)),
		stages: make(map[stageSig]units.Millis, len(snap.Stages)),
	}
	if fm.ops == nil {
		fm.ops = map[graph.OpID]units.Millis{}
	}
	for _, c := range snap.Comms {
		fm.comms[[2]graph.OpID{c.From, c.To}] = c.Ms
	}
	for _, st := range snap.Stages {
		fm.stages[makeStageSig(st.Ops)] = st.Ms
	}
	return fm, nil
}

// FrozenModel is a cost model backed purely by recorded measurements.
// Missing probes do not invent values: OpTime and StageTime fall back to
// pessimistic serialization of known per-op times, CommTime to zero, and
// every miss is counted so callers can detect an incomplete profile.
type FrozenModel struct {
	Model  string
	ops    map[graph.OpID]units.Millis
	comms  map[[2]graph.OpID]units.Millis
	stages map[stageSig]units.Millis
	misses int
}

// OpTime implements cost.Model.
func (f *FrozenModel) OpTime(v graph.OpID) units.Millis {
	if t, ok := f.ops[v]; ok {
		return t
	}
	f.misses++
	return 0
}

// CommTime implements cost.Model.
func (f *FrozenModel) CommTime(u, v graph.OpID) units.Millis {
	if t, ok := f.comms[[2]graph.OpID{u, v}]; ok {
		return t
	}
	f.misses++
	return 0
}

// StageTime implements cost.Model. An unmeasured group is priced as the
// sum of its members' solo times — the safe upper bound that never makes
// an unprofiled fusion look attractive.
func (f *FrozenModel) StageTime(ops []graph.OpID) units.Millis {
	if len(ops) == 1 {
		return f.OpTime(ops[0])
	}
	if t, ok := f.stages[makeStageSig(ops)]; ok {
		return t
	}
	f.misses++
	var sum units.Millis
	for _, v := range ops {
		sum += f.OpTime(v)
	}
	return sum
}

// Misses returns how many lookups fell outside the recorded profile.
func (f *FrozenModel) Misses() int { return f.misses }
