package profile

import (
	"sync"
	"testing"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/randdag"
	"github.com/shus-lab/hios/internal/sched/lp"
	"github.com/shus-lab/hios/internal/units"
)

func build(t *testing.T) (*graph.Graph, cost.Model) {
	t.Helper()
	g := graph.New(3, 2)
	a := g.AddOp(graph.Op{Name: "a", Time: 2, Util: 0.3})
	b := g.AddOp(graph.Op{Name: "b", Time: 3, Util: 0.3})
	c := g.AddOp(graph.Op{Name: "c", Time: 1, Util: 0.3})
	g.AddEdge(a, b, 0.5)
	g.AddEdge(a, c, 0.25)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g, cost.FromGraph(g, cost.DefaultContention())
}

func TestTransparentForwarding(t *testing.T) {
	g, m := build(t)
	tab := NewTable(m, 1, 1)
	if tab.OpTime(0) != m.OpTime(0) || tab.CommTime(0, 1) != m.CommTime(0, 1) {
		t.Fatal("CostTable changed values")
	}
	want := m.StageTime([]graph.OpID{1, 2})
	if tab.StageTime([]graph.OpID{1, 2}) != want {
		t.Fatal("StageTime changed values")
	}
	_ = g
}

func TestMemoizationCountsDistinctProbes(t *testing.T) {
	_, m := build(t)
	tab := NewTable(m, 1, 1)
	for i := 0; i < 5; i++ {
		tab.OpTime(0)
		tab.OpTime(1)
		tab.CommTime(0, 1)
		tab.StageTime([]graph.OpID{1, 2})
		tab.StageTime([]graph.OpID{2, 1}) // same set, same probe
	}
	st := tab.Stats()
	if st.OpProbes != 2 || st.CommProbes != 1 || st.StageProbes != 1 {
		t.Fatalf("probe counts = %+v", st)
	}
	if st.Probes() != 4 {
		t.Fatalf("total probes = %d, want 4", st.Probes())
	}
}

func TestSingletonStageCountsAsOpProbe(t *testing.T) {
	_, m := build(t)
	tab := NewTable(m, 1, 1)
	tab.StageTime([]graph.OpID{1})
	st := tab.Stats()
	if st.OpProbes != 1 || st.StageProbes != 0 {
		t.Fatalf("singleton stage accounting wrong: %+v", st)
	}
}

func TestSimulatedCostAccumulates(t *testing.T) {
	_, m := build(t)
	tab := NewTable(m, 2, 3) // 5 executions per probe
	tab.OpTime(0)            // t=2 -> 10 ms
	tab.OpTime(0)            // memoized, free
	tab.CommTime(0, 1)       // t=0.5 -> 2.5 ms
	st := tab.Stats()
	if diff := st.SimulatedMs - 12.5; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("simulated cost = %g, want 12.5", st.SimulatedMs)
	}
}

func TestDefaultsApplied(t *testing.T) {
	_, m := build(t)
	tab := NewTable(m, 0, 0)
	tab.OpTime(0)
	st := tab.Stats()
	want := units.Millis(DefaultWarmup+DefaultRepeats) * 2
	if diff := st.SimulatedMs - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("simulated cost = %g, want %g", st.SimulatedMs, want)
	}
}

// TestMemoizationIsTransparentToSchedulers: wrapping a cost model in a
// CostTable must not change any scheduler's output — memoized values are
// bit-identical, so schedules and latencies are too.
func TestMemoizationIsTransparentToSchedulers(t *testing.T) {
	cfg := randdag.Paper()
	cfg.Ops, cfg.Layers, cfg.Deps, cfg.Seed = 40, 6, 80, 3
	g := randdag.MustGenerate(cfg)
	m := cost.FromGraph(g, cost.DefaultContention())

	direct, err := lp.Schedule(g, m, lp.Options{GPUs: 3})
	if err != nil {
		t.Fatal(err)
	}
	tab := NewTable(m, 1, 1)
	profiled, err := lp.Schedule(g, tab, lp.Options{GPUs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if direct.Latency != profiled.Latency {
		t.Fatalf("profiling changed the result: %g vs %g", direct.Latency, profiled.Latency)
	}
	if direct.Schedule.String() != profiled.Schedule.String() {
		t.Fatal("profiling changed the schedule")
	}
}

func TestIOSProbesMoreStagesThanLP(t *testing.T) {
	// The Fig. 14 mechanism: the IOS dynamic program probes far more
	// distinct operator groups than HIOS's sliding window. This is a
	// coarse structural check with a wide diamond.
	g := graph.New(8, 12)
	src := g.AddOp(graph.Op{Name: "s", Time: 1, Util: 0.2})
	var mids []graph.OpID
	for i := 0; i < 6; i++ {
		v := g.AddOp(graph.Op{Time: 1, Util: 0.2})
		g.AddEdge(src, v, 0.1)
		mids = append(mids, v)
	}
	dst := g.AddOp(graph.Op{Name: "d", Time: 1, Util: 0.2})
	for _, v := range mids {
		g.AddEdge(v, dst, 0.1)
	}
	g.MustFinalize()
	m := cost.FromGraph(g, cost.DefaultContention())

	tab := NewTable(m, 1, 1)
	// Simulate IOS-style enumeration: all subsets of the middle layer.
	var rec func(i int, cur []graph.OpID)
	rec = func(i int, cur []graph.OpID) {
		if len(cur) > 1 {
			tab.StageTime(cur)
		}
		for j := i; j < len(mids); j++ {
			rec(j+1, append(cur, mids[j]))
		}
	}
	rec(0, nil)
	iosProbes := tab.Stats().StageProbes

	tab2 := NewTable(m, 1, 1)
	// HIOS window-style enumeration: contiguous windows of size <= 4.
	for i := 0; i < len(mids); i++ {
		for p := 2; p <= 4 && i+p <= len(mids); p++ {
			tab2.StageTime(mids[i : i+p])
		}
	}
	lpProbes := tab2.Stats().StageProbes
	if iosProbes <= 2*lpProbes {
		t.Fatalf("IOS probes (%d) should far exceed window probes (%d)", iosProbes, lpProbes)
	}
}

// TestConcurrentProbesStayExact hammers one table from many goroutines
// and checks the accounting afterwards: probe counts must equal the
// distinct probe population (no double-counted misses despite the
// read-lock fast path), and every memoized value must match the inner
// model exactly.
func TestConcurrentProbesStayExact(t *testing.T) {
	cfg := randdag.Paper()
	cfg.Ops, cfg.Layers, cfg.Deps, cfg.Seed = 40, 5, 80, 5
	g := randdag.MustGenerate(cfg)
	inner := cost.FromGraph(g, cost.DefaultContention())
	tab := NewTable(inner, 1, 1)

	n := g.NumOps()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				for v := 0; v < n; v++ {
					tab.OpTime(graph.OpID(v))
				}
				for v := 0; v+3 < n; v += 2 {
					tab.StageTime([]graph.OpID{graph.OpID(v), graph.OpID(v + 1), graph.OpID(v + 3)})
				}
				tab.CommTime(graph.OpID(w), graph.OpID(w+1))
			}
		}(w)
	}
	wg.Wait()

	st := tab.Stats()
	if st.OpProbes != n {
		t.Fatalf("OpProbes = %d, want %d", st.OpProbes, n)
	}
	wantStages := 0
	for v := 0; v+3 < n; v += 2 {
		wantStages++
		ops := []graph.OpID{graph.OpID(v), graph.OpID(v + 1), graph.OpID(v + 3)}
		if got, want := tab.StageTime(ops), inner.StageTime(ops); got != want { //lint:floatexact memoized value must be bit-identical
			t.Fatalf("stage %v: %v != %v", ops, got, want)
		}
	}
	if st.StageProbes != wantStages {
		t.Fatalf("StageProbes = %d, want %d", st.StageProbes, wantStages)
	}
	if st.CommProbes != 8 {
		t.Fatalf("CommProbes = %d, want 8", st.CommProbes)
	}
}
