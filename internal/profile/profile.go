// Package profile reproduces the measurement layer of HIOS: the paper's
// scheduler is profile-based, so before optimization it measures the
// execution time of every operator, of every candidate group of concurrent
// operators, and of every possible inter-GPU transfer. Fig. 14's "time
// cost of scheduling optimization" is dominated by this profiling, which
// is why IOS — whose dynamic program probes exponentially more operator
// groups — pays far more than HIOS-LP/MR as inputs grow.
//
// CostTable wraps any cost.Model, memoizes every distinct probe exactly as
// a real profiler caches measurements, and accounts the simulated wall
// time a real profiler would have spent: (Warmup + Repeats) executions of
// the probed kernel or transfer.
package profile

import (
	"sort"
	"sync"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
)

// Defaults for measurement repetition, matching the paper's methodology of
// averaging 36 runs after warm-up.
const (
	DefaultWarmup  = 2
	DefaultRepeats = 36
)

// CostTable is a memoizing, probe-counting cost.Model.
type CostTable struct {
	inner   cost.Model
	warmup  int
	repeats int

	mu     sync.Mutex
	ops    map[graph.OpID]float64
	stages map[string]float64
	comms  map[[2]graph.OpID]float64
	simMs  float64
}

var _ cost.Model = (*CostTable)(nil)

// NewTable wraps m with measurement accounting. Non-positive warmup or
// repeats select the defaults.
func NewTable(m cost.Model, warmup, repeats int) *CostTable {
	if warmup <= 0 {
		warmup = DefaultWarmup
	}
	if repeats <= 0 {
		repeats = DefaultRepeats
	}
	return &CostTable{
		inner:   m,
		warmup:  warmup,
		repeats: repeats,
		ops:     make(map[graph.OpID]float64),
		stages:  make(map[string]float64),
		comms:   make(map[[2]graph.OpID]float64),
	}
}

// OpTime implements cost.Model.
func (t *CostTable) OpTime(v graph.OpID) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if x, ok := t.ops[v]; ok {
		return x
	}
	x := t.inner.OpTime(v)
	t.ops[v] = x
	t.simMs += float64(t.warmup+t.repeats) * x
	return x
}

// CommTime implements cost.Model.
func (t *CostTable) CommTime(u, v graph.OpID) float64 {
	key := [2]graph.OpID{u, v}
	t.mu.Lock()
	defer t.mu.Unlock()
	if x, ok := t.comms[key]; ok {
		return x
	}
	x := t.inner.CommTime(u, v)
	t.comms[key] = x
	t.simMs += float64(t.warmup+t.repeats) * x
	return x
}

// StageTime implements cost.Model. Probes are keyed by the sorted member
// set, as a profiler measures each distinct concurrent group once.
func (t *CostTable) StageTime(ops []graph.OpID) float64 {
	if len(ops) == 1 {
		return t.OpTime(ops[0])
	}
	key := stageKey(ops)
	t.mu.Lock()
	defer t.mu.Unlock()
	if x, ok := t.stages[key]; ok {
		return x
	}
	x := t.inner.StageTime(ops)
	t.stages[key] = x
	t.simMs += float64(t.warmup+t.repeats) * x
	return x
}

// Stats summarizes the measurements a real profiler would have performed.
type Stats struct {
	// OpProbes, StageProbes, CommProbes count distinct measurements.
	OpProbes, StageProbes, CommProbes int
	// SimulatedMs is the wall time those measurements would have cost:
	// (warmup + repeats) executions each.
	SimulatedMs float64
}

// Probes returns the total number of distinct measurements.
func (s Stats) Probes() int { return s.OpProbes + s.StageProbes + s.CommProbes }

// Stats returns the accounting snapshot.
func (t *CostTable) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return Stats{
		OpProbes:    len(t.ops),
		StageProbes: len(t.stages),
		CommProbes:  len(t.comms),
		SimulatedMs: t.simMs,
	}
}

func stageKey(ops []graph.OpID) string {
	s := make([]graph.OpID, len(ops))
	copy(s, ops)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	buf := make([]byte, 0, 4*len(s))
	for _, id := range s {
		buf = append(buf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(buf)
}
