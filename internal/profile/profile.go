// Package profile reproduces the measurement layer of HIOS: the paper's
// scheduler is profile-based, so before optimization it measures the
// execution time of every operator, of every candidate group of concurrent
// operators, and of every possible inter-GPU transfer. Fig. 14's "time
// cost of scheduling optimization" is dominated by this profiling, which
// is why IOS — whose dynamic program probes exponentially more operator
// groups — pays far more than HIOS-LP/MR as inputs grow.
//
// CostTable wraps any cost.Model, memoizes every distinct probe exactly as
// a real profiler caches measurements, and accounts the simulated wall
// time a real profiler would have spent: (Warmup + Repeats) executions of
// the probed kernel or transfer.
package profile

import (
	"sort"
	"sync"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/units"
)

// Defaults for measurement repetition, matching the paper's methodology of
// averaging 36 runs after warm-up.
const (
	DefaultWarmup  = 2
	DefaultRepeats = 36
)

// CostTable is a memoizing, probe-counting cost.Model.
//
// Lookups take a read lock only, so concurrent sweeps sharing one table
// scale with cores once the working set is memoized; a miss upgrades to
// the write lock with a double-check, which also keeps the probe counters
// exact. Concurrent use requires the wrapped model's own lookups to be
// safe for concurrent readers (every model in internal/cost is: they are
// pure functions over immutable graph data).
//
// Determinism under concurrency: memoized values and probe counts are
// exact regardless of interleaving (misses double-check under the write
// lock). Only SimulatedMs accumulates in probe-completion order, so a
// table probed from several goroutines may report last-ulp differences
// across runs; probe it from one goroutine (as Fig. 14 does) when the
// exact float matters.
type CostTable struct {
	inner   cost.Model
	warmup  int
	repeats int

	mu     sync.RWMutex
	ops    map[graph.OpID]units.Millis
	stages map[stageSig]units.Millis
	comms  map[[2]graph.OpID]units.Millis
	simMs  units.Millis
}

var _ cost.Model = (*CostTable)(nil)

// NewTable wraps m with measurement accounting. Non-positive warmup or
// repeats select the defaults.
func NewTable(m cost.Model, warmup, repeats int) *CostTable {
	if warmup <= 0 {
		warmup = DefaultWarmup
	}
	if repeats <= 0 {
		repeats = DefaultRepeats
	}
	return &CostTable{
		inner:   m,
		warmup:  warmup,
		repeats: repeats,
		ops:     make(map[graph.OpID]units.Millis),
		stages:  make(map[stageSig]units.Millis),
		comms:   make(map[[2]graph.OpID]units.Millis),
	}
}

// OpTime implements cost.Model.
func (t *CostTable) OpTime(v graph.OpID) units.Millis {
	t.mu.RLock()
	x, ok := t.ops[v]
	t.mu.RUnlock()
	if ok {
		return x
	}
	x = t.inner.OpTime(v)
	t.mu.Lock()
	defer t.mu.Unlock()
	if old, ok := t.ops[v]; ok {
		return old // another prober measured it first
	}
	t.ops[v] = x
	t.simMs += x.Scale(float64(t.warmup + t.repeats))
	return x
}

// CommTime implements cost.Model.
func (t *CostTable) CommTime(u, v graph.OpID) units.Millis {
	key := [2]graph.OpID{u, v}
	t.mu.RLock()
	x, ok := t.comms[key]
	t.mu.RUnlock()
	if ok {
		return x
	}
	x = t.inner.CommTime(u, v)
	t.mu.Lock()
	defer t.mu.Unlock()
	if old, ok := t.comms[key]; ok {
		return old
	}
	t.comms[key] = x
	t.simMs += x.Scale(float64(t.warmup + t.repeats))
	return x
}

// StageTime implements cost.Model. Probes are keyed by the sorted member
// set, as a profiler measures each distinct concurrent group once.
func (t *CostTable) StageTime(ops []graph.OpID) units.Millis {
	if len(ops) == 1 {
		return t.OpTime(ops[0])
	}
	key := makeStageSig(ops)
	t.mu.RLock()
	x, ok := t.stages[key]
	t.mu.RUnlock()
	if ok {
		return x
	}
	x = t.inner.StageTime(ops)
	t.mu.Lock()
	defer t.mu.Unlock()
	if old, ok := t.stages[key]; ok {
		return old
	}
	t.stages[key] = x
	t.simMs += x.Scale(float64(t.warmup + t.repeats))
	return x
}

// Stats summarizes the measurements a real profiler would have performed.
type Stats struct {
	// OpProbes, StageProbes, CommProbes count distinct measurements.
	OpProbes, StageProbes, CommProbes int
	// SimulatedMs is the wall time those measurements would have cost:
	// (warmup + repeats) executions each.
	SimulatedMs units.Millis
}

// Probes returns the total number of distinct measurements.
func (s Stats) Probes() int { return s.OpProbes + s.StageProbes + s.CommProbes }

// Stats returns the accounting snapshot.
func (t *CostTable) Stats() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return Stats{
		OpProbes:    len(t.ops),
		StageProbes: len(t.stages),
		CommProbes:  len(t.comms),
		SimulatedMs: t.simMs,
	}
}

// stageSigInline is how many member IDs a stageSig stores inline. The IOS
// dynamic program — the hot caller — never probes stages wider than its
// MaxStage default of 8, so the inline array covers every probe the
// schedulers issue without allocating.
const stageSigInline = 8

// stageSig is a comparable key identifying a concurrent-stage probe by its
// sorted member set. Up to stageSigInline members live in the fixed array;
// wider stages (possible through direct API use only) spill the remainder
// into an encoded string. Building a key for an inline-sized stage
// performs zero heap allocations, unlike the byte-string key it replaced —
// the IOS DP issues millions of probes per block, so the key build was the
// table's dominant allocation site (see BenchmarkStageSig).
type stageSig struct {
	n    int
	ids  [stageSigInline]graph.OpID
	rest string
}

// makeStageSig builds the canonical (sorted-member) key for ops.
//
// The spill path sorts the member values on a stack array and encodes
// the overflow directly as big-endian 8-byte chunks (OpIDs are
// non-negative, so the encoding's lexicographic order equals numeric
// order): two allocations — the chunk buffer and the spill string —
// instead of the five of the heap-sorted slice + byte-buffer + string
// round-trip it replaces (BenchmarkStageSigWide).
func makeStageSig(ops []graph.OpID) stageSig {
	k := stageSig{n: len(ops)}
	if len(ops) <= stageSigInline {
		copy(k.ids[:], ops)
		ids := k.ids[:len(ops)]
		// Insertion sort on the stack array: stages are tiny and nearly
		// sorted already (schedulers keep stage members ID-ordered).
		for a := 1; a < len(ids); a++ {
			for b := a; b > 0 && ids[b] < ids[b-1]; b-- {
				ids[b], ids[b-1] = ids[b-1], ids[b]
			}
		}
		return k
	}
	// Sort the member values on a stack array (insertion sort for the
	// realistic widths; the stdlib-sort fallback below keeps its own
	// heap slice so this array never escapes), then encode the sorted
	// tail directly into the spill buffer.
	if len(ops) <= 64 {
		var arr [64]uint64
		vals := arr[:len(ops)]
		for i, id := range ops {
			vals[i] = uint64(id)
		}
		for a := 1; a < len(vals); a++ {
			for b := a; b > 0 && vals[b] < vals[b-1]; b-- {
				vals[b], vals[b-1] = vals[b-1], vals[b]
			}
		}
		k.fillSpill(vals)
		return k
	}
	vals := make([]uint64, len(ops))
	for i, id := range ops {
		vals[i] = uint64(id)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	k.fillSpill(vals)
	return k
}

// fillSpill distributes sorted member values into the inline array and
// the encoded spill string.
func (k *stageSig) fillSpill(vals []uint64) {
	for i := 0; i < stageSigInline; i++ {
		k.ids[i] = graph.OpID(vals[i])
	}
	buf := make([]byte, 8*(len(vals)-stageSigInline))
	for i, v := range vals[stageSigInline:] {
		putChunk(buf[8*i:8*i+8], v)
	}
	k.rest = string(buf)
}

func putChunk(dst []byte, v uint64) {
	dst[0] = byte(v >> 56)
	dst[1] = byte(v >> 48)
	dst[2] = byte(v >> 40)
	dst[3] = byte(v >> 32)
	dst[4] = byte(v >> 24)
	dst[5] = byte(v >> 16)
	dst[6] = byte(v >> 8)
	dst[7] = byte(v)
}

// members reconstructs the sorted member set the key encodes.
func (k stageSig) members() []graph.OpID {
	out := make([]graph.OpID, 0, k.n)
	inline := k.n
	if inline > stageSigInline {
		inline = stageSigInline
	}
	out = append(out, k.ids[:inline]...)
	for i := 0; i+7 < len(k.rest); i += 8 {
		var id uint64
		for j := 0; j < 8; j++ {
			id = id<<8 | uint64(k.rest[i+j])
		}
		out = append(out, graph.OpID(id))
	}
	return out
}
