package randdag

import (
	"testing"
	"testing/quick"

	"github.com/shus-lab/hios/internal/graph"
)

func TestPaperDefaults(t *testing.T) {
	cfg := Paper()
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumOps() != 200 {
		t.Fatalf("ops = %d, want 200", g.NumOps())
	}
	if g.NumEdges() != 400 {
		t.Fatalf("edges = %d, want 400", g.NumEdges())
	}
	if layers := g.Layers(); len(layers) != 14 {
		t.Fatalf("layers = %d, want 14", len(layers))
	}
}

func TestDeterministic(t *testing.T) {
	a := MustGenerate(Paper())
	b := MustGenerate(Paper())
	if a.NumOps() != b.NumOps() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed must give the same shape")
	}
	for i := range a.Ops() {
		if a.Op(graph.OpID(i)).Time != b.Op(graph.OpID(i)).Time {
			t.Fatal("same seed must give the same op times")
		}
	}
	for i, e := range a.Edges() {
		if b.Edges()[i] != e {
			t.Fatal("same seed must give the same edges")
		}
	}
	cfg := Paper()
	cfg.Seed = 2
	c := MustGenerate(cfg)
	same := true
	for i := range a.Ops() {
		if a.Op(graph.OpID(i)).Time != c.Op(graph.OpID(i)).Time {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should give different op times")
	}
}

func TestTimeBoundsAndComm(t *testing.T) {
	cfg := Paper()
	cfg.Seed = 5
	g := MustGenerate(cfg)
	for _, op := range g.Ops() {
		if op.Time < cfg.MinTime || op.Time > cfg.MaxTime {
			t.Fatalf("op time %g outside [%g, %g]", op.Time, cfg.MinTime, cfg.MaxTime)
		}
		if op.Util <= 0 || op.Util > 1 {
			t.Fatalf("op util %g outside (0, 1]", op.Util)
		}
	}
	for _, e := range g.Edges() {
		want := cfg.CommRatio * g.Op(e.From).Time
		if want < cfg.CommFloor {
			want = cfg.CommFloor
		}
		if diff := e.Time - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("edge %d->%d transfer %g, want %g", e.From, e.To, e.Time, want)
		}
	}
}

func TestEveryNonSourceLayerConnected(t *testing.T) {
	g := MustGenerate(Paper())
	layers := g.Layers()
	// Layer assignment by the generator guarantees at least one
	// predecessor for every op beyond the first generated layer, so no
	// operator can sit deeper than its generated layer and layer 0 ops
	// are exactly the dependency-free ones.
	for _, v := range layers[0] {
		if g.InDegree(v) != 0 {
			t.Fatalf("layer-0 op %d has predecessors", v)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Ops: 0, Layers: 1},
		{Ops: 5, Layers: 0},
		{Ops: 5, Layers: 9},
		{Ops: 5, Layers: 2, MinTime: 3, MaxTime: 1},
		{Ops: 5, Layers: 2, MinTime: -1, MaxTime: 1},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d should be rejected: %+v", i, cfg)
		}
	}
}

func TestSingleLayer(t *testing.T) {
	cfg := Paper()
	cfg.Ops, cfg.Layers, cfg.Deps = 10, 1, 5
	g := MustGenerate(cfg)
	if g.NumEdges() != 0 {
		t.Fatalf("single-layer graph must have no dependencies, got %d", g.NumEdges())
	}
}

func TestGenerateProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg := Paper()
		cfg.Seed = seed
		mod := func(k int64) int {
			v := int(seed % k)
			if v < 0 {
				v += int(k)
			}
			return v
		}
		cfg.Ops = 20 + mod(7)*10
		cfg.Layers = 4 + mod(5)
		cfg.Deps = 2 * cfg.Ops
		g, err := Generate(cfg)
		if err != nil {
			return false
		}
		if g.NumOps() != cfg.Ops {
			return false
		}
		if _, err := g.TopoOrder(); err != nil {
			return false
		}
		// No duplicate edges.
		seen := map[[2]graph.OpID]bool{}
		for _, e := range g.Edges() {
			k := [2]graph.OpID{e.From, e.To}
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAdjacentOnlyEdges(t *testing.T) {
	cfg := Paper()
	cfg.AdjacentOnly = true
	cfg.Seed = 9
	g := MustGenerate(cfg)
	if g.NumEdges() != cfg.Deps {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), cfg.Deps)
	}
	// Every dependency must connect consecutive generated layers. The
	// generator assigns contiguous ID ranges per layer, so recover the
	// layer of each op from the structural guarantee: use Layers().
	layers := g.Layers()
	level := make(map[graph.OpID]int)
	for l, ops := range layers {
		for _, v := range ops {
			level[v] = l
		}
	}
	for _, e := range g.Edges() {
		// Topological levels can compress (an op's level is its
		// longest path depth), so assert the generated constraint
		// loosely: no edge may span more than the layer count, and
		// levels must increase.
		if level[e.To] <= level[e.From] {
			t.Fatalf("edge %d->%d does not increase depth", e.From, e.To)
		}
	}
}
