// Package randdag generates the random layered DL-model structures of the
// paper's simulation study (§V-A).
//
// A generated graph has a preset number of operators spread over a preset
// number of layers, with dependencies only pointing from earlier layers to
// later ones. Operator execution times are drawn uniformly from
// [MinTime, MaxTime] (the paper uses 0.1–4 ms), and the transfer time of
// an operator's output between GPUs is max(CommFloor, CommRatio·t(v)) —
// the paper's "a maximum of 0.1 milliseconds and p of the execution time
// of this operator" with p preset to 80%. Operator utilization (the input
// to the intra-GPU contention model) grows with execution time: the
// largest operators saturate a GPU alone, the smallest leave most of it
// idle, mirroring Fig. 1.
package randdag

import (
	"fmt"
	"math/rand"

	"github.com/shus-lab/hios/internal/graph"
)

// Config describes one random model family.
type Config struct {
	// Ops is the number of operators (paper default: 200).
	Ops int
	// Layers is the number of operator layers (paper default: 14).
	Layers int
	// Deps is the number of inter-operator dependencies (paper default:
	// 2 × Ops).
	Deps int
	// MinTime and MaxTime bound the uniform operator execution time in
	// milliseconds (paper: 0.1 and 4).
	MinTime, MaxTime float64
	// CommRatio is p, the ratio of an operator's output transfer time to
	// its execution time (paper default: 0.8).
	CommRatio float64
	// CommFloor is the minimum transfer time in milliseconds (paper:
	// 0.1), modeling per-message link latency.
	CommFloor float64
	// UtilMin is the utilization of a zero-time operator; utilization
	// interpolates linearly to 1.0 at MaxTime.
	UtilMin float64
	// Seed drives the deterministic generator.
	Seed int64
	// AdjacentOnly restricts the extra (non-structural) dependencies to
	// consecutive layers, concentrating fan-in. The default (false)
	// spreads them uniformly over all layer pairs, per §V-A. Adjacent
	// fan-in makes instances dependency-bound rather than load-bound:
	// every operator waits on several previous-layer finishes (+
	// transfers), so the critical path — not total work — limits
	// multi-GPU speedup. See EXPERIMENTS.md's Fig. 9 discussion.
	AdjacentOnly bool
}

// Paper returns the simulation defaults of §V-A.
func Paper() Config {
	return Config{
		Ops:       200,
		Layers:    14,
		Deps:      400,
		MinTime:   0.1,
		MaxTime:   4,
		CommRatio: 0.8,
		CommFloor: 0.1,
		UtilMin:   0.15,
		Seed:      1,
	}
}

// Generate builds one random layered DAG. The same Config always yields
// the same graph.
func Generate(cfg Config) (*graph.Graph, error) {
	if cfg.Ops < 1 {
		return nil, fmt.Errorf("randdag: need at least 1 operator, got %d", cfg.Ops)
	}
	if cfg.Layers < 1 || cfg.Layers > cfg.Ops {
		return nil, fmt.Errorf("randdag: layers %d out of range [1, %d]", cfg.Layers, cfg.Ops)
	}
	if cfg.MaxTime < cfg.MinTime || cfg.MinTime < 0 {
		return nil, fmt.Errorf("randdag: bad time range [%g, %g]", cfg.MinTime, cfg.MaxTime)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Assign operators to layers: one guaranteed per layer, the rest
	// uniform. layerOf is in operator-ID order; IDs within a layer stay
	// contiguous so layer membership is easy to reason about in tests.
	counts := make([]int, cfg.Layers)
	for l := 0; l < cfg.Layers; l++ {
		counts[l] = 1
	}
	for i := cfg.Layers; i < cfg.Ops; i++ {
		counts[rng.Intn(cfg.Layers)]++
	}
	g := graph.New(cfg.Ops, cfg.Deps)
	layers := make([][]graph.OpID, cfg.Layers)
	for l := 0; l < cfg.Layers; l++ {
		for k := 0; k < counts[l]; k++ {
			t := cfg.MinTime + rng.Float64()*(cfg.MaxTime-cfg.MinTime)
			util := 1.0
			if cfg.MaxTime > 0 {
				util = cfg.UtilMin + (1-cfg.UtilMin)*(t/cfg.MaxTime)
			}
			id := g.AddOp(graph.Op{
				Name: fmt.Sprintf("op%d_l%d", g.NumOps(), l),
				Time: t,
				Util: util,
				Kind: "synthetic",
			})
			layers[l] = append(layers[l], id)
		}
	}

	comm := func(u graph.OpID) float64 {
		t := cfg.CommRatio * g.Op(u).Time
		if t < cfg.CommFloor {
			t = cfg.CommFloor
		}
		return t
	}

	// Structural edges: every operator beyond the first layer depends on
	// at least one operator of the previous layer, which keeps the graph
	// layered in the Fig. 10 sense (layer count controls the degree of
	// parallelism).
	type pair struct{ u, v graph.OpID }
	used := make(map[pair]bool)
	edges := 0
	for l := 1; l < cfg.Layers; l++ {
		for _, v := range layers[l] {
			u := layers[l-1][rng.Intn(len(layers[l-1]))]
			g.AddEdge(u, v, comm(u))
			used[pair{u, v}] = true
			edges++
		}
	}
	// Remaining random forward dependencies between distinct layers.
	for attempts := 0; cfg.Layers > 1 && edges < cfg.Deps && attempts < 200*cfg.Deps; attempts++ {
		lu := rng.Intn(cfg.Layers - 1)
		lv := lu + 1
		if !cfg.AdjacentOnly {
			lv = lu + 1 + rng.Intn(cfg.Layers-lu-1)
		}
		u := layers[lu][rng.Intn(len(layers[lu]))]
		v := layers[lv][rng.Intn(len(layers[lv]))]
		if used[pair{u, v}] {
			continue
		}
		used[pair{u, v}] = true
		g.AddEdge(u, v, comm(u))
		edges++
	}
	if err := g.Finalize(); err != nil {
		return nil, err
	}
	return g, nil
}

// MustGenerate is Generate that panics on error, for benchmarks and tests
// with statically valid configurations.
func MustGenerate(cfg Config) *graph.Graph {
	g, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return g
}
