package hios_test

import (
	"fmt"
	"log"

	hios "github.com/shus-lab/hios"
)

// ExampleOptimize schedules a tiny two-branch model on two GPUs with
// HIOS-LP.
func ExampleOptimize() {
	g := hios.NewGraph(4, 4)
	in := g.AddOp(hios.Op{Name: "in", Time: 0.1, Util: 0.1})
	a := g.AddOp(hios.Op{Name: "conv-a", Time: 2, Util: 0.9})
	b := g.AddOp(hios.Op{Name: "conv-b", Time: 2, Util: 0.9})
	out := g.AddOp(hios.Op{Name: "concat", Time: 0.2, Util: 0.2})
	g.AddEdge(in, a, 0.1)
	g.AddEdge(in, b, 0.1)
	g.AddEdge(a, out, 0.1)
	g.AddEdge(b, out, 0.1)
	if err := g.Finalize(); err != nil {
		log.Fatal(err)
	}

	m := hios.DefaultCostModel(g)
	res, err := hios.Optimize(g, m, hios.HIOSLP, hios.Options{GPUs: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("latency: %.1f ms on %d GPUs\n", res.Latency, res.Schedule.UsedGPUs())
	// Output:
	// latency: 2.5 ms on 2 GPUs
}

// ExampleAnalyzePipeline reports sustained throughput of a pipelined
// two-stage schedule.
func ExampleAnalyzePipeline() {
	g := hios.NewGraph(2, 1)
	a := g.AddOp(hios.Op{Name: "a", Time: 2, Util: 1})
	b := g.AddOp(hios.Op{Name: "b", Time: 2, Util: 1})
	g.AddEdge(a, b, 0.5)
	if err := g.Finalize(); err != nil {
		log.Fatal(err)
	}
	m := hios.DefaultCostModel(g)
	// Pin each stage to its own GPU: a classic two-stage pipeline.
	s := hios.NewSchedule(2)
	s.Append(0, a)
	s.Append(1, b)
	rep, err := hios.AnalyzePipeline(g, m, s, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("latency %.1f ms, steady period %.1f ms\n", rep.LatencyMs, rep.SteadyPeriodMs)
	// Output:
	// latency 4.5 ms, steady period 2.0 ms
}

// ExampleWithTopology shows cluster-aware scheduling.
func ExampleWithTopology() {
	cfg := hios.RandomModelDefaults()
	cfg.Ops, cfg.Layers, cfg.Deps, cfg.Seed = 20, 4, 40, 1
	g, err := hios.RandomModel(cfg)
	if err != nil {
		log.Fatal(err)
	}
	flat := hios.DefaultCostModel(g)
	topo := hios.WithTopology(flat, hios.TwoLevelTopology(2, 2, 8))
	res, err := hios.Optimize(g, topo, hios.HIOSLP, hios.Options{GPUs: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduled %d operators\n", res.Schedule.NumOps())
	// Output:
	// scheduled 20 operators
}
