// Package hios is the public API of the HIOS reproduction: a hierarchical
// inter-operator scheduler that minimizes the inference latency of
// DAG-structured deep-learning models across multiple GPUs, after
//
//	Kundu & Shu, "HIOS: Hierarchical Inter-Operator Scheduler for
//	Real-Time Inference of DAG-Structured Deep Learning Models on
//	Multiple GPUs", IEEE CLUSTER 2023.
//
// The workflow is: obtain a computation graph (a built-in CNN benchmark, a
// random model, or one you construct op by op), pick a cost model, run a
// scheduling algorithm, then evaluate, simulate, execute or export the
// resulting schedule.
//
//	net := hios.InceptionV3(hios.DualA40(), 299)
//	m := hios.DefaultCostModel(net.G)
//	res, err := hios.Optimize(net.G, m, hios.HIOSLP, hios.Options{GPUs: 2})
//
// Everything below delegates to the focused packages under internal/; the
// exported aliases let applications hold and inspect the underlying values
// without importing internal paths.
package hios

import (
	"errors"
	"fmt"
	"io"

	"github.com/shus-lab/hios/internal/cost"
	"github.com/shus-lab/hios/internal/costcache"
	"github.com/shus-lab/hios/internal/dpcache"
	"github.com/shus-lab/hios/internal/gpu"
	"github.com/shus-lab/hios/internal/graph"
	"github.com/shus-lab/hios/internal/memory"
	"github.com/shus-lab/hios/internal/model"
	"github.com/shus-lab/hios/internal/pipeline"
	"github.com/shus-lab/hios/internal/profile"
	"github.com/shus-lab/hios/internal/randdag"
	"github.com/shus-lab/hios/internal/runtime"
	"github.com/shus-lab/hios/internal/sched"
	"github.com/shus-lab/hios/internal/sched/ios"
	"github.com/shus-lab/hios/internal/sched/lp"
	"github.com/shus-lab/hios/internal/sched/mr"
	"github.com/shus-lab/hios/internal/sched/refine"
	"github.com/shus-lab/hios/internal/sched/seq"
	"github.com/shus-lab/hios/internal/sched/window"
	"github.com/shus-lab/hios/internal/sim"
	"github.com/shus-lab/hios/internal/trace"
	"github.com/shus-lab/hios/internal/units"
)

// Typed physical quantities of the cost core (see internal/units and
// DESIGN.md "Units and dimensional safety"): distinct defined types over
// float64, so mixing milliseconds with seconds or bytes with FLOPs is a
// compile error. They format and marshal exactly like float64.
type (
	// Millis is a duration in milliseconds, the native unit of every
	// latency and cost-model value in the API.
	Millis = units.Millis
	// Seconds is a duration in seconds (roofline intermediate).
	Seconds = units.Seconds
	// Bytes is a data size in bytes.
	Bytes = units.Bytes
	// FLOPs is an amount of floating-point work.
	FLOPs = units.FLOPs
	// BytesPerSec is a data rate (memory or link bandwidth).
	BytesPerSec = units.BytesPerSec
	// FLOPsPerSec is a compute throughput.
	FLOPsPerSec = units.FLOPsPerSec
)

// Core graph and schedule types.
type (
	// Graph is a weighted DAG of operators: the computation graph of a
	// DL model (§III-A of the paper).
	Graph = graph.Graph
	// Op is one operator (vertex) with its solo execution time and GPU
	// utilization.
	Op = graph.Op
	// OpID identifies an operator within a Graph.
	OpID = graph.OpID
	// Edge is a data dependency with its inter-GPU transfer time.
	Edge = graph.Edge
	// Schedule maps operators onto GPUs and partitions each GPU's work
	// into stages of concurrently executing operators.
	Schedule = sched.Schedule
	// Stage is one set of operators launched together on one GPU.
	Stage = sched.Stage
	// GPUSchedule is one device's ordered stage list.
	GPUSchedule = sched.GPUSchedule
	// Timing is an evaluated schedule: per-stage and per-operator start
	// and finish times plus the end-to-end latency.
	Timing = sched.Timing
	// Result pairs a schedule with its latency.
	Result = sched.Result
	// CostModel supplies t(v), t(u,v) and t(S) (§III-A).
	CostModel = cost.Model
	// Net is a built neural network: graph plus tensor shapes.
	Net = model.Net
	// Platform is a GPU device + interconnect + device count.
	Platform = gpu.Platform
	// RandomModelConfig parameterizes random layered DL models
	// (the paper's §V-A simulation workload).
	RandomModelConfig = randdag.Config
	// ExecReport is the outcome of a live multi-worker execution.
	ExecReport = runtime.Report
	// ExecOptions calibrates the live executor.
	ExecOptions = runtime.Options
	// SimTrace is a discrete-event execution timeline.
	SimTrace = sim.Trace
	// ProfiledModel is a memoizing cost model that counts distinct
	// probes and accounts the simulated wall time a real profiler
	// would spend measuring them (the paper's Fig. 14 methodology).
	ProfiledModel = profile.CostTable
	// ProfileStats summarizes a ProfiledModel's measurements.
	ProfileStats = profile.Stats
	// FrozenCostModel is a cost model replayed from a saved profile
	// snapshot; it never re-measures.
	FrozenCostModel = profile.FrozenModel
	// MemoryReport is the per-GPU peak-memory analysis of a schedule.
	MemoryReport = memory.Report
	// PipelineReport summarizes a schedule's sustained throughput over
	// back-to-back inference requests.
	PipelineReport = pipeline.Report
	// RandWireConfig parameterizes randomly wired networks.
	RandWireConfig = model.RandWireConfig
	// Topology describes non-uniform inter-GPU links (multi-node
	// clusters with fast intra-node and slow inter-node transfers).
	Topology = gpu.Topology
	// TopologyCostModel is a cost model with placement-dependent
	// communication.
	TopologyCostModel = cost.TopologyModel
)

// Algorithm selects a scheduling algorithm.
type Algorithm string

// The implemented schedulers (§V-B).
const (
	// Sequential executes operators one by one on a single GPU.
	Sequential Algorithm = "sequential"
	// IOS is the single-GPU inter-operator scheduler of Ding et al.
	// (MLSys 2021): exact stage partitioning by dynamic programming.
	IOS Algorithm = "ios"
	// HIOSLP is the paper's contribution: iterative longest-path
	// mapping across GPUs plus sliding-window intra-GPU
	// parallelization.
	HIOSLP Algorithm = "hios-lp"
	// HIOSMR is the paper's alternative multi-GPU scheduler based on
	// mapping recording (Algorithm 3).
	HIOSMR Algorithm = "hios-mr"
	// InterLP is HIOS-LP without the intra-GPU pass.
	InterLP Algorithm = "inter-gpu-lp"
	// InterMR is HIOS-MR without the intra-GPU pass.
	InterMR Algorithm = "inter-gpu-mr"
)

// Algorithms lists every implemented scheduler.
func Algorithms() []Algorithm {
	return []Algorithm{Sequential, IOS, HIOSLP, HIOSMR, InterLP, InterMR}
}

// Options configures scheduling. Every zero value selects a documented
// default, so Options{} is valid for the single-GPU algorithms and
// Options{GPUs: m} for the multi-GPU ones; Validate is the single place
// those rules live.
type Options struct {
	// GPUs is the number of homogeneous devices (M). Multi-GPU
	// algorithms require at least 1; single-GPU algorithms ignore it.
	GPUs int
	// Window is the maximum sliding-window size w of the intra-GPU
	// pass; zero selects the default (4).
	Window int
	// IOSMaxStage bounds operators per stage in the IOS DP (0 = 8).
	IOSMaxStage int
	// IOSPruneWindow bounds the IOS frontier enumeration (0 = 8).
	IOSPruneWindow int
	// IOSWorkers bounds how many independent IOS blocks are solved
	// concurrently. The schedule is byte-identical at any width; zero or
	// one solves serially, negative is invalid.
	IOSWorkers int
}

// Sentinel errors of Options.Validate. Match with errors.Is; the
// returned errors wrap these with the offending values.
var (
	// ErrUnknownAlgorithm reports an Algorithm value outside
	// Algorithms().
	ErrUnknownAlgorithm = errors.New("hios: unknown algorithm")
	// ErrNoGPUs reports a multi-GPU algorithm invoked with GPUs < 1.
	ErrNoGPUs = errors.New("hios: multi-GPU algorithm needs GPUs >= 1")
	// ErrBadWindow reports a negative sliding-window size.
	ErrBadWindow = errors.New("hios: negative window size")
	// ErrBadIOSBound reports a negative IOS pruning bound or worker
	// count.
	ErrBadIOSBound = errors.New("hios: negative IOS bound")
)

// multiGPU reports whether the algorithm places operators across
// devices (and so requires Options.GPUs).
func (a Algorithm) multiGPU() bool {
	switch a {
	case HIOSLP, HIOSMR, InterLP, InterMR:
		return true
	}
	return false
}

// Validate checks the options against the selected algorithm and
// returns the first violation wrapped around one of the sentinel errors
// above (nil when the configuration is valid). Zero values with
// documented defaults — Window, IOSMaxStage, IOSPruneWindow, IOSWorkers,
// and GPUs for single-GPU algorithms — are always valid. Optimize and every cmd/
// driver route their checking through here, so the rules live in one
// place and callers can errors.Is-match the failure.
func (o Options) Validate(algo Algorithm) error {
	switch algo {
	case Sequential, IOS, HIOSLP, HIOSMR, InterLP, InterMR:
	default:
		return fmt.Errorf("%w %q (want one of %v)", ErrUnknownAlgorithm, string(algo), Algorithms())
	}
	if algo.multiGPU() && o.GPUs < 1 {
		return fmt.Errorf("%w: %s got GPUs=%d", ErrNoGPUs, algo, o.GPUs)
	}
	if o.Window < 0 {
		return fmt.Errorf("%w: %d", ErrBadWindow, o.Window)
	}
	if o.IOSMaxStage < 0 || o.IOSPruneWindow < 0 || o.IOSWorkers < 0 {
		return fmt.Errorf("%w: IOSMaxStage=%d IOSPruneWindow=%d IOSWorkers=%d", ErrBadIOSBound, o.IOSMaxStage, o.IOSPruneWindow, o.IOSWorkers)
	}
	return nil
}

// Optimize runs the selected scheduling algorithm on g under cost model
// m and returns the optimized schedule with its predicted latency. The
// options are checked with opt.Validate(algo) first.
func Optimize(g *Graph, m CostModel, algo Algorithm, opt Options) (Result, error) {
	if err := opt.Validate(algo); err != nil {
		return Result{}, err
	}
	switch algo {
	case Sequential:
		return seq.Schedule(g, m)
	case IOS:
		return ios.Schedule(g, m, ios.Options{MaxStage: opt.IOSMaxStage, PruneWindow: opt.IOSPruneWindow, Workers: opt.IOSWorkers})
	case HIOSLP:
		return lp.Schedule(g, m, lp.Options{GPUs: opt.GPUs, Window: opt.Window})
	case HIOSMR:
		return mr.Schedule(g, m, mr.Options{GPUs: opt.GPUs, Window: opt.Window})
	case InterLP:
		return lp.Schedule(g, m, lp.Options{GPUs: opt.GPUs, InterOnly: true})
	default: // InterMR; Validate rejected everything else
		return mr.Schedule(g, m, mr.Options{GPUs: opt.GPUs, InterOnly: true})
	}
}

// Parallelize applies the intra-GPU sliding-window pass (Algorithm 2) to
// an existing schedule, never increasing its latency.
func Parallelize(g *Graph, m CostModel, s *Schedule, windowSize int) (Result, error) {
	return window.Parallelize(g, m, s, windowSize)
}

// Refine runs the local-search post-pass (an extension beyond the paper):
// single-operator relocations between GPUs committed while latency
// improves, followed by the sliding-window pass with the given width
// (values below 2 skip it). Never returns a schedule worse than the
// input. maxMoves <= 0 selects the default budget.
func Refine(g *Graph, m CostModel, s *Schedule, maxMoves, windowSize int) (Result, error) {
	res, err := refine.Improve(g, m, s, refine.Options{MaxMoves: maxMoves, Window: windowSize})
	if err != nil {
		return Result{}, err
	}
	return res.Result, nil
}

// NewGraph returns an empty computation graph with capacity hints.
func NewGraph(ops, edges int) *Graph { return graph.New(ops, edges) }

// NewSchedule returns an empty schedule over m GPUs, to be filled with
// Append / AppendStage — for hand-crafted or externally computed
// schedules.
func NewSchedule(m int) *Schedule { return sched.New(m) }

// DefaultCostModel prices g by its own vertex/edge weights with the
// calibrated concurrent-execution contention model.
func DefaultCostModel(g *Graph) CostModel {
	return cost.FromGraph(g, cost.DefaultContention())
}

// WithTopology overlays a hierarchical interconnect onto a cost model:
// every cross-GPU transfer is scaled by the pair's topology factor. The
// evaluator, simulator and placement-aware schedulers automatically use
// the pair-dependent costs.
func WithTopology(m CostModel, topo Topology) TopologyCostModel {
	return cost.WithTopology(m, topo)
}

// UniformTopology returns the paper's flat SMP interconnect.
func UniformTopology(gpus int) Topology { return gpu.Uniform(gpus) }

// TwoLevelTopology returns a cluster of nodes x gpusPerNode devices with
// inter-node transfers costing interFactor times the intra-node baseline.
func TwoLevelTopology(nodes, gpusPerNode int, interFactor float64) Topology {
	return gpu.TwoLevel(nodes, gpusPerNode, interFactor)
}

// Profiled wraps a cost model with measurement accounting: every distinct
// operator, operator group and transfer probed by a scheduler is counted
// once and charged (warmup + repeats) simulated executions, reproducing
// the profiling component of the paper's scheduling-optimization cost.
// Zero warmup/repeats select the paper's defaults (2 and 36).
func Profiled(m CostModel, warmup, repeats int) *ProfiledModel {
	return profile.NewTable(m, warmup, repeats)
}

// ImportProfile loads a saved profile snapshot (ProfiledModel.Export) as
// a frozen cost model: scheduling against it replays the recorded
// measurements exactly and counts any probe the profile is missing.
func ImportProfile(data []byte) (*FrozenCostModel, error) {
	return profile.Import(data)
}

// KernelCacheStats snapshots the process-wide kernel-signature cache:
// how many distinct kernel, transfer and concurrent-stage shapes have
// been priced, and the hit/miss counts per tier. The cache memoizes the
// analytic cost model by shape (never by operator identity), so building
// many nets or sweeping many sizes in one process re-derives each
// distinct roofline exactly once; see DESIGN.md "Cost-model caching
// hierarchy".
type KernelCacheStats = costcache.Stats

// SharedKernelCacheStats reports the shared cache's current snapshot.
func SharedKernelCacheStats() KernelCacheStats { return costcache.Shared().Stats() }

// ResetSharedKernelCache drops every memoized shape. Results never
// depend on the cache's state — values are pure functions of their
// shapes — so this only matters for cold-cache measurements.
func ResetSharedKernelCache() { costcache.Shared().Reset() }

// BlockCacheStats snapshots the process-wide IOS block-solve cache: how
// many distinct block signatures have been solved and how often a solve
// was answered from memory. The cache memoizes whole dynamic-program
// solves by a canonical block signature (stage items, intra-block edges,
// contention calibration and pruning options — never operator IDs), so a
// structurally identical block costs one map lookup after its first
// solve; see DESIGN.md "Pruned and memoized DP search".
type BlockCacheStats = dpcache.Stats

// SharedBlockCacheStats reports the shared block cache's snapshot.
func SharedBlockCacheStats() BlockCacheStats { return dpcache.Shared().Stats() }

// ResetSharedBlockCache drops every memoized block solve. Cached solves
// are bit-identical replays of the dynamic program, so results never
// depend on the cache's state — only cold-path timings do.
func ResetSharedBlockCache() { dpcache.Shared().Reset() }

// CachedCostModel prices a built net straight from its per-operator
// kernel shapes through the shared kernel-signature cache, with the
// calibrated contention model. It is bit-identical to DefaultCostModel
// on the net's graph — the graph weights are those same cached values —
// but shares every probe with all other nets in the process.
func CachedCostModel(n *Net) (CostModel, error) {
	return n.CachedModel(cost.DefaultContention())
}

// Evaluate computes the timing of a complete schedule under the paper's
// precedence constraints.
func Evaluate(g *Graph, m CostModel, s *Schedule) (*Timing, error) {
	return sched.Evaluate(g, m, s)
}

// Latency returns just the evaluated makespan of a schedule.
func Latency(g *Graph, m CostModel, s *Schedule) (Millis, error) {
	return sched.Latency(g, m, s)
}

// Simulate executes the schedule on the discrete-event engine.
// serializedLinks additionally models each directed GPU pair's
// interconnect as a single shared resource, as a physical NVLink bridge
// behaves.
func Simulate(g *Graph, m CostModel, s *Schedule, serializedLinks bool) (*SimTrace, error) {
	return sim.RunOpts(g, m, s, sim.Options{SerializeLinks: serializedLinks})
}

// Execute runs the schedule for real: one worker goroutine per simulated
// GPU, concurrent kernels within stages, MPI transfers across GPUs. The
// zero ExecOptions selects sensible calibration.
func Execute(g *Graph, m CostModel, s *Schedule, opt ExecOptions) (*ExecReport, error) {
	return runtime.Run(g, m, s, opt)
}

// ExportJSON renders a schedule in the JSON interchange format the
// paper's engine consumes.
func ExportJSON(g *Graph, s *Schedule, modelName string, algo Algorithm, latency Millis) ([]byte, error) {
	return trace.MarshalSchedule(g, s, modelName, string(algo), latency)
}

// ImportJSON parses a schedule from the JSON interchange format.
func ImportJSON(data []byte) (*Schedule, error) {
	s, _, err := trace.UnmarshalSchedule(data)
	return s, err
}

// ChromeTrace renders a simulated execution for chrome://tracing.
func ChromeTrace(g *Graph, tr *SimTrace) ([]byte, error) {
	return trace.ChromeTrace(g, tr)
}

// Gantt renders a simulated execution as a fixed-width text Gantt chart
// (one row per GPU) with a stage legend.
func Gantt(g *Graph, tr *SimTrace, width int) string {
	return trace.Gantt(g, tr, width)
}

// WriteGantt streams the Gantt chart to w without building the
// intermediate string; Gantt delegates to it.
func WriteGantt(w io.Writer, g *Graph, tr *SimTrace, width int) error {
	return trace.WriteGantt(w, g, tr, width)
}

// DOT renders the computation graph in Graphviz format; when s is
// non-nil, operators are clustered by GPU and colored by stage.
func DOT(g *Graph, s *Schedule) string {
	return trace.DOT(g, s)
}

// WriteDOT streams the Graphviz rendering to w without building the
// intermediate string; DOT delegates to it.
func WriteDOT(w io.Writer, g *Graph, s *Schedule) error {
	return trace.WriteDOT(w, g, s)
}

// InceptionV3 builds the Inception-v3 benchmark at a square input size on
// the platform's device and interconnect.
func InceptionV3(p Platform, inputSize int) *Net {
	return model.InceptionV3(p.Dev, p.Link, inputSize)
}

// NASNetA builds the NASNet-A benchmark at a square input size.
func NASNetA(p Platform, inputSize int) *Net {
	return model.NASNet(p.Dev, p.Link, inputSize)
}

// SqueezeNet builds SqueezeNet v1.1 at a square input size (canonical
// 224): the shallow, fire-module benchmark of the IOS paper's suite.
func SqueezeNet(p Platform, inputSize int) *Net {
	return model.SqueezeNet(p.Dev, p.Link, inputSize)
}

// ResNet50 builds ResNet-50 at a square input size (canonical 224): the
// near-chain control case where inter-operator parallelism has little to
// exploit.
func ResNet50(p Platform, inputSize int) *Net {
	return model.ResNet50(p.Dev, p.Link, inputSize)
}

// RandWireNet builds a randomly wired CNN (Xie et al., ICCV 2019), the
// most irregular benchmark of the IOS suite.
func RandWireNet(p Platform, cfg RandWireConfig) (*Net, error) {
	return model.RandWire(p.Dev, p.Link, cfg)
}

// DefaultRandWire returns a small randomly-wired configuration.
func DefaultRandWire() RandWireConfig { return model.DefaultRandWire() }

// AnalyzeMemory computes the per-GPU peak device-memory footprint of a
// schedule (buffer lifetimes from producer start to last consumer finish,
// cross-GPU copies included).
func AnalyzeMemory(g *Graph, m CostModel, s *Schedule) (*MemoryReport, error) {
	return memory.Analyze(g, m, s)
}

// AnalyzePipeline unrolls the schedule over k back-to-back inference
// requests and reports single-request latency, steady-state period and
// sustained throughput — the serving-rate extension of the paper's
// single-inference objective.
func AnalyzePipeline(g *Graph, m CostModel, s *Schedule, k int) (*PipelineReport, error) {
	return pipeline.Analyze(g, m, s, k)
}

// RandomModel generates a random layered DL-model structure (§V-A).
func RandomModel(cfg RandomModelConfig) (*Graph, error) { return randdag.Generate(cfg) }

// RandomModelDefaults returns the paper's simulation defaults: 200
// operators, 14 layers, 400 dependencies, p = 0.8.
func RandomModelDefaults() RandomModelConfig { return randdag.Paper() }

// Platforms of the paper's experiments.
var (
	// DualA40 is the main testbed: two A40s with an NVLink bridge.
	DualA40 = gpu.DualA40
	// DualA5500 is the second NVLink platform.
	DualA5500 = gpu.DualA5500
	// DualV100S is the PCIe platform.
	DualV100S = gpu.DualV100S
	// Cluster is an M-GPU NVSwitch node for scaling studies.
	Cluster = gpu.Cluster
)
