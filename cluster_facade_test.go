package hios_test

import (
	"errors"
	"strings"
	"testing"

	hios "github.com/shus-lab/hios"
)

// clusterOptions builds a small synthetic cluster entirely through the
// facade: a heterogeneous three-node fleet serving one deployment with
// hand-written per-platform profiles (no scheduling, so the test stays
// fast).
func clusterOptions() hios.ClusterOptions {
	return hios.ClusterOptions{
		Fleet: hios.FleetSpec{Nodes: []hios.ClusterNodeSpec{
			{Platform: "a40", Count: 2, Replicas: 2},
			{Platform: "v100s", Count: 1, Replicas: 2},
		}},
		Deployments: []hios.ClusterDeployment{{Name: "m", Profiles: []hios.ClusterProfile{
			{Platform: "a40", Latency: 4, Period: 2, Busy: 3},
			{Platform: "a5500", Latency: 5, Period: 2.5, Busy: 3.75},
			{Platform: "v100s", Latency: 8, Period: 4, Busy: 6},
		}}},
		Tenants: []hios.ClusterTenant{
			{Name: "web", Deadline: 20, Rate: 400},
			{Name: "batch", Deadline: 100, Rate: 200},
		},
		Horizon: 400,
		Seed:    7,
	}
}

func TestClusterFacade(t *testing.T) {
	opt := clusterOptions()
	opt.Router = hios.RouterLeastLoad
	opt.Admission = hios.ClusterAdmission{RatePerSec: 800, MaxQueue: 128, ShedHopeless: true}
	opt.Autoscaler = hios.AutoscalerOptions{Enabled: true, MaxReplicas: 4}
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
	a, err := hios.ClusterServe(opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Offered == 0 || a.Completed == 0 {
		t.Fatalf("degenerate report: %+v", a)
	}
	b, err := hios.ClusterServe(opt)
	if err != nil {
		t.Fatal(err)
	}
	var sa, sb strings.Builder
	if err := a.Render(&sa); err != nil {
		t.Fatal(err)
	}
	if err := b.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if sa.String() != sb.String() {
		t.Fatal("ClusterServe is not deterministic through the facade")
	}
}

func TestClusterFacadeErrors(t *testing.T) {
	cases := []struct {
		mutate func(*hios.ClusterOptions)
		want   error
	}{
		{func(o *hios.ClusterOptions) { o.Fleet.Nodes = nil }, hios.ErrClusterNoNodes},
		{func(o *hios.ClusterOptions) { o.Fleet.Nodes[0].Platform = "h100" }, hios.ErrClusterUnknownPlatform},
		{func(o *hios.ClusterOptions) { o.Deployments = nil }, hios.ErrClusterNoDeployments},
		{func(o *hios.ClusterOptions) { o.Tenants = nil }, hios.ErrClusterNoTenants},
		{func(o *hios.ClusterOptions) { o.Router = "round-robin" }, hios.ErrUnknownRouterPolicy},
		{func(o *hios.ClusterOptions) { o.Admission.RatePerSec = -1 }, hios.ErrClusterBadAdmission},
		{func(o *hios.ClusterOptions) {
			o.Autoscaler = hios.AutoscalerOptions{Enabled: true, MinReplicas: 5, MaxReplicas: 2}
		}, hios.ErrClusterBadAutoscaler},
		{func(o *hios.ClusterOptions) { o.Horizon = -1 }, hios.ErrClusterBadHorizon},
	}
	for i, c := range cases {
		opt := clusterOptions()
		c.mutate(&opt)
		err := opt.Validate()
		if !errors.Is(err, c.want) {
			t.Errorf("case %d: Validate = %v, want errors.Is %v", i, err, c.want)
		}
		if _, err := hios.ClusterServe(opt); !errors.Is(err, c.want) {
			t.Errorf("case %d: ClusterServe err = %v, want errors.Is %v", i, err, c.want)
		}
	}
}

func TestRouterPoliciesFacade(t *testing.T) {
	ps := hios.RouterPolicies()
	if len(ps) != 4 || ps[0] != hios.RouterLeastLoad || ps[3] != hios.RouterRandom {
		t.Fatalf("RouterPolicies = %v", ps)
	}
	usage := hios.RouterPolicyUsage()
	for _, p := range ps {
		if !strings.Contains(usage, string(p)) {
			t.Errorf("RouterPolicyUsage misses %q: %s", p, usage)
		}
	}
	if u := hios.ServePolicyUsage(); !strings.Contains(u, string(hios.ServePolicies()[0])) {
		t.Errorf("ServePolicyUsage misses first policy: %s", u)
	}
}

func TestClusterPresetsFacade(t *testing.T) {
	var keys []string
	for _, p := range hios.ClusterPresets() {
		keys = append(keys, p.Key)
		if p.Cost <= 0 || p.Platform.GPUs == 0 {
			t.Errorf("preset %q has degenerate platform or cost: %+v", p.Key, p)
		}
	}
	if strings.Join(keys, ",") != "a40,a5500,v100s" {
		t.Fatalf("preset keys = %v", keys)
	}
}

// TestSpecParsersFacade pins the shared flag grammar of hios-serve and
// hios-cluster: Parse(String(v)) round-trips through the facade parsers.
func TestSpecParsersFacade(t *testing.T) {
	tp := hios.TenantSpec()
	tenant := hios.ServeTenant{Name: "web", Deadline: 20, Rate: 300}
	s := tp.String(tenant)
	if s != "name=web,deadline=20,rate=300" {
		t.Fatalf("tenant String = %q", s)
	}
	back, err := tp.Parse(s)
	if err != nil || back != tenant {
		t.Fatalf("tenant round trip = %+v, %v", back, err)
	}

	np := hios.NodeSpecParser()
	node := hios.ClusterNodeSpec{Platform: "a40", Count: 2, Replicas: 3}
	back2, err := np.Parse(np.String(node))
	if err != nil || back2 != node {
		t.Fatalf("node round trip = %+v, %v", back2, err)
	}
}
