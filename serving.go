package hios

import (
	"github.com/shus-lab/hios/internal/experiments"
	"github.com/shus-lab/hios/internal/serve"
)

// This file extends the facade to the online serving layer (DESIGN.md
// §9): a deterministic discrete-event simulator of a deadline-aware,
// multi-tenant model-serving deployment built on the offline scheduling
// core. cmd/hios-serve is an ordinary client of exactly this surface.

type (
	// ServeOptions configures one serving simulation: deployed models,
	// tenants, dispatch policy, arrival horizon and seed. It follows
	// the validated-options pattern — zero values select documented
	// defaults and Validate reports violations with errors.Is-matchable
	// sentinels.
	ServeOptions = serve.Options
	// ServeReport is the outcome of a serving simulation: attainment,
	// goodput, tail latencies, per-tenant and per-GPU breakdowns and
	// the queue-depth timeline.
	ServeReport = serve.Report
	// ServeModel is one deployed model: pipeline replicas characterized
	// by the latency and steady-state period of a schedule.
	ServeModel = serve.Model
	// ServeTenant is one request class: an arrival process (open-loop
	// Poisson rate or closed-loop clients) plus a relative deadline.
	ServeTenant = serve.Tenant
	// ServePolicy selects the dispatch discipline.
	ServePolicy = serve.Policy
	// ServeTenantReport is one tenant's slice of a ServeReport.
	ServeTenantReport = serve.TenantReport
	// ServeGPUUtil is the utilization of one GPU of one replica.
	ServeGPUUtil = serve.GPUUtil
	// ServeQueuePoint is one step of the queue-depth timeline.
	ServeQueuePoint = serve.QueuePoint
	// ServeRequestOutcome is one request's fate, recorded when
	// ServeOptions.RecordRequests is set.
	ServeRequestOutcome = serve.RequestOutcome
	// ServeSweepOptions parameterizes AttainmentVsLoad.
	ServeSweepOptions = experiments.ServeSweepOptions
)

// The implemented dispatch policies.
const (
	// ServeFIFO serves requests in arrival order.
	ServeFIFO = serve.FIFO
	// ServeEDF serves the earliest absolute deadline first.
	ServeEDF = serve.EDF
	// ServeEDFShed is EDF plus shed-on-hopeless admission control.
	ServeEDFShed = serve.EDFShed
)

// ServePolicies lists every implemented dispatch policy.
func ServePolicies() []ServePolicy { return serve.Policies() }

// Sentinel errors of ServeOptions.Validate, re-exported for errors.Is
// matching without importing internal paths.
var (
	// ErrServeNoModels reports a ServeOptions with no deployed models.
	ErrServeNoModels = serve.ErrNoModels
	// ErrServeNoTenants reports a ServeOptions with no tenants.
	ErrServeNoTenants = serve.ErrNoTenants
	// ErrServeUnknownPolicy reports an unrecognized ServePolicy.
	ErrServeUnknownPolicy = serve.ErrUnknownPolicy
	// ErrServeBadModel reports a structurally invalid ServeModel.
	ErrServeBadModel = serve.ErrBadModel
	// ErrServeBadTenant reports a structurally invalid ServeTenant.
	ErrServeBadTenant = serve.ErrBadTenant
	// ErrServeBadHorizon reports a negative arrival horizon.
	ErrServeBadHorizon = serve.ErrBadHorizon
)

// NewServeModel derives a deployment model from a schedule: latency and
// admission period from the pipeline unrolling analysis, per-GPU busy
// time from the evaluated timing. Replicas starts at 1; scale it to the
// GPU budget before serving.
func NewServeModel(name string, g *Graph, m CostModel, s *Schedule) (ServeModel, error) {
	return serve.NewModel(name, g, m, s)
}

// Serve runs one online serving simulation: seeded stochastic arrivals,
// deadline-aware dispatch, shedding under the admission-control policy.
// The same options always produce the same report (DESIGN.md §7, §9).
func Serve(opt ServeOptions) (*ServeReport, error) { return serve.Run(opt) }

// AttainmentVsLoad sweeps SLO attainment versus offered load for every
// real-system scheduler × dispatch policy; the resulting figure is
// byte-identical at any Workers width.
func AttainmentVsLoad(opt ServeSweepOptions) (Figure, error) {
	return experiments.AttainmentVsLoad(opt)
}
