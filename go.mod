module github.com/shus-lab/hios

go 1.24
