module github.com/shus-lab/hios

go 1.24

toolchain go1.24.0
