// Benchmark harness: one benchmark per table/figure of the HIOS paper's
// evaluation. Each benchmark regenerates its figure (at a reduced seed
// count so the suite stays tractable; cmd/hios-sim and cmd/hios-exp run
// the full paper settings) and reports the figure's headline quantities
// as custom metrics, so `go test -bench=. -benchmem` reproduces the
// entire evaluation in one command.
//
// Benchmarks are not expected to match the paper's absolute numbers — the
// substrate is an analytic GPU model, not the authors' dual-A40 testbed —
// but the reported metrics preserve the paper's qualitative results:
// who wins, by roughly what factor, and where crossovers fall.
package hios_test

import (
	"testing"

	"github.com/shus-lab/hios/internal/experiments"
)

// benchSim keeps sweeps fast: 3 instances per point instead of 30.
func benchSim() experiments.SimOptions {
	return experiments.SimOptions{Seeds: 3, GPUs: 4}
}

// BenchmarkFig01ContentionRatio regenerates Fig. 1: the
// sequential/parallel latency ratio of two identical convolutions. The
// reported metrics bracket the crossover (ratio at 64px is > 1, at 128px
// < 1 on the paper's A40).
func BenchmarkFig01ContentionRatio(b *testing.B) {
	var at64, at128 float64
	for i := 0; i < b.N; i++ {
		fig := experiments.Fig1()
		at64, _ = fig.At("A40", 64)
		at128, _ = fig.At("A40", 128)
	}
	b.ReportMetric(at64, "ratio@64px")
	b.ReportMetric(at128, "ratio@128px")
}

// BenchmarkFig02CommCompute regenerates Fig. 2: the transfer/compute time
// ratio across the three dual-GPU platforms at 1024px. The PCIe platform
// must report the highest ratio.
func BenchmarkFig02CommCompute(b *testing.B) {
	var nvlink, pcie float64
	for i := 0; i < b.N; i++ {
		fig := experiments.Fig2()
		nvlink, _ = fig.At("2x A40 + NVLink", 1024)
		pcie, _ = fig.At("2x V100S + PCIe3", 1024)
	}
	b.ReportMetric(nvlink, "nvlink-ratio@1024")
	b.ReportMetric(pcie, "pcie-ratio@1024")
}

// BenchmarkFig07GPUCount regenerates Fig. 7: latency vs the number of
// GPUs (2..12) for six algorithms. Reported: HIOS-LP's speedup over
// sequential at 12 GPUs (paper: up to 3.8x) and over HIOS-MR.
func BenchmarkFig07GPUCount(b *testing.B) {
	var lpSpeedup, lpOverMR float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig7(benchSim())
		if err != nil {
			b.Fatal(err)
		}
		seq, _ := fig.At(experiments.AlgoSequential, 12)
		lp, _ := fig.At(experiments.AlgoHIOSLP, 12)
		mr, _ := fig.At(experiments.AlgoHIOSMR, 12)
		lpSpeedup = seq / lp
		lpOverMR = mr / lp
	}
	b.ReportMetric(lpSpeedup, "lp-speedup@12gpus")
	b.ReportMetric(lpOverMR, "lp-over-mr@12gpus")
}

// BenchmarkFig08OperatorCount regenerates Fig. 8: latency vs operator
// count (100..400). Reported: HIOS-LP's speedup over sequential and over
// IOS at 400 operators (paper: ~2.1x and ~1.9x).
func BenchmarkFig08OperatorCount(b *testing.B) {
	var overSeq, overIOS float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig8(benchSim())
		if err != nil {
			b.Fatal(err)
		}
		seq, _ := fig.At(experiments.AlgoSequential, 400)
		ios, _ := fig.At(experiments.AlgoIOS, 400)
		lp, _ := fig.At(experiments.AlgoHIOSLP, 400)
		overSeq, overIOS = seq/lp, ios/lp
	}
	b.ReportMetric(overSeq, "lp-over-seq@400ops")
	b.ReportMetric(overIOS, "lp-over-ios@400ops")
}

// BenchmarkFig09DependencyCount regenerates Fig. 9: latency vs dependency
// count (400..600). Reported: HIOS-LP's speedup over sequential at both
// ends (the paper's speedup declines from 2.06 to 1.64; our load-bound
// instances flatten the decline — see EXPERIMENTS.md).
func BenchmarkFig09DependencyCount(b *testing.B) {
	var sp400, sp600 float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig9(benchSim())
		if err != nil {
			b.Fatal(err)
		}
		seqA, _ := fig.At(experiments.AlgoSequential, 400)
		lpA, _ := fig.At(experiments.AlgoHIOSLP, 400)
		seqB, _ := fig.At(experiments.AlgoSequential, 600)
		lpB, _ := fig.At(experiments.AlgoHIOSLP, 600)
		sp400, sp600 = seqA/lpA, seqB/lpB
	}
	b.ReportMetric(sp400, "lp-speedup@400deps")
	b.ReportMetric(sp600, "lp-speedup@600deps")
}

// BenchmarkFig10LayerCount regenerates Fig. 10: latency vs layer count
// (6..22), the model's degree of parallelism. Reported: HIOS-LP's latency
// at 6 and 22 layers (paper: 174 vs 233 ms — wider is faster).
func BenchmarkFig10LayerCount(b *testing.B) {
	var lat6, lat22 float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig10(benchSim())
		if err != nil {
			b.Fatal(err)
		}
		lat6, _ = fig.At(experiments.AlgoHIOSLP, 6)
		lat22, _ = fig.At(experiments.AlgoHIOSLP, 22)
	}
	b.ReportMetric(lat6, "lp-ms@6layers")
	b.ReportMetric(lat22, "lp-ms@22layers")
}

// BenchmarkFig11CommRatio regenerates Fig. 11: latency vs the
// communication/computation ratio p (0.4..1.2). Reported: HIOS-LP's
// speedup over sequential at p=0.4 and p=1.2 (paper: 2.23 down to 1.78).
func BenchmarkFig11CommRatio(b *testing.B) {
	var spLow, spHigh float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig11(benchSim())
		if err != nil {
			b.Fatal(err)
		}
		seqA, _ := fig.At(experiments.AlgoSequential, 0.4)
		lpA, _ := fig.At(experiments.AlgoHIOSLP, 0.4)
		seqB, _ := fig.At(experiments.AlgoSequential, 1.2)
		lpB, _ := fig.At(experiments.AlgoHIOSLP, 1.2)
		spLow, spHigh = seqA/lpA, seqB/lpB
	}
	b.ReportMetric(spLow, "lp-speedup@p0.4")
	b.ReportMetric(spHigh, "lp-speedup@p1.2")
}

// BenchmarkFig12InferenceLatency regenerates Fig. 12 for both benchmarks
// at their default and largest sizes. Reported: HIOS-LP's gain over IOS
// at the largest Inception input (paper: up to 16.5%).
func BenchmarkFig12InferenceLatency(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		inc, err := experiments.Fig12(experiments.Inception, []int{299, 2048})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Fig12(experiments.NASNet, []int{331, 2048}); err != nil {
			b.Fatal(err)
		}
		ios, _ := inc.At(experiments.AlgoIOS, 2048)
		lp, _ := inc.At(experiments.AlgoHIOSLP, 2048)
		gain = (ios - lp) / ios * 100
	}
	b.ReportMetric(gain, "lp-gain-over-ios-%")
}

// BenchmarkFig13GainBreakdown regenerates Fig. 13: the six-algorithm
// breakdown on both benchmarks at small and large inputs. Reported: the
// fraction of HIOS-LP's gain delivered by inter-GPU scheduling alone for
// Inception at the large input (paper: 98.2%).
func BenchmarkFig13GainBreakdown(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		fig, _, err := experiments.Fig13()
		if err != nil {
			b.Fatal(err)
		}
		seq, _ := fig.At(experiments.AlgoSequential, 1) // inception@2048
		lp, _ := fig.At(experiments.AlgoHIOSLP, 1)
		inter, _ := fig.At(experiments.AlgoInterLP, 1)
		if seq > lp {
			share = (seq - inter) / (seq - lp) * 100
		}
	}
	b.ReportMetric(share, "inter-gpu-gain-share-%")
}

// BenchmarkAblationWindow sweeps the sliding-window size w (DESIGN.md
// ablation). Reported: HIOS-LP latency with the pass disabled (w=1) and
// at the default width.
func BenchmarkAblationWindow(b *testing.B) {
	var w1, w4 float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.AblationWindow(experiments.SimOptions{Seeds: 2, GPUs: 4})
		if err != nil {
			b.Fatal(err)
		}
		w1, _ = fig.At(experiments.AlgoHIOSLP, 1)
		w4, _ = fig.At(experiments.AlgoHIOSLP, 4)
	}
	b.ReportMetric(w1, "lp-ms@w1")
	b.ReportMetric(w4, "lp-ms@w4")
}

// BenchmarkAblationIOSPruning sweeps IOS's prune window (DESIGN.md
// ablation). Reported: latency at the narrowest and widest settings.
func BenchmarkAblationIOSPruning(b *testing.B) {
	var narrow, wide float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.AblationIOSPruning(experiments.SimOptions{Seeds: 1, GPUs: 4})
		if err != nil {
			b.Fatal(err)
		}
		narrow, _ = fig.At(experiments.AlgoIOS, 2)
		wide, _ = fig.At(experiments.AlgoIOS, 10)
	}
	b.ReportMetric(narrow, "ios-ms@r2")
	b.ReportMetric(wide, "ios-ms@r10")
}

// BenchmarkAblationLinkContention measures the shared-NVLink penalty per
// scheduler (the mechanism behind the paper's real-system LP>MR gap).
// Reported: the extra milliseconds HIOS-LP and HIOS-MR pay when the
// bridge serializes.
func BenchmarkAblationLinkContention(b *testing.B) {
	var lpPen, mrPen float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.AblationLinkContention(experiments.Inception, 1024)
		if err != nil {
			b.Fatal(err)
		}
		lpIdeal, _ := fig.At(experiments.AlgoHIOSLP, 0)
		lpSer, _ := fig.At(experiments.AlgoHIOSLP, 1)
		mrIdeal, _ := fig.At(experiments.AlgoHIOSMR, 0)
		mrSer, _ := fig.At(experiments.AlgoHIOSMR, 1)
		lpPen, mrPen = lpSer-lpIdeal, mrSer-mrIdeal
	}
	b.ReportMetric(lpPen, "lp-penalty-ms")
	b.ReportMetric(mrPen, "mr-penalty-ms")
}

// BenchmarkNCCLOverlap runs the §VI-E what-if: NCCL-style launch hiding
// on NASNet at its default size. Reported: HIOS-LP's latency under MPI
// and NCCL transports.
func BenchmarkNCCLOverlap(b *testing.B) {
	var mpiLat, ncclLat float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.NCCLOverlap(experiments.NASNet, 331)
		if err != nil {
			b.Fatal(err)
		}
		mpiLat, _ = fig.At(experiments.AlgoHIOSLP, 0)
		ncclLat, _ = fig.At(experiments.AlgoHIOSLP, 1)
	}
	b.ReportMetric(mpiLat, "lp-ms-mpi")
	b.ReportMetric(ncclLat, "lp-ms-nccl")
}

// BenchmarkOptimalityGap measures how close the inter-GPU heuristics come
// to the exact branch-and-bound optimum on 18-operator models (a study
// the paper's claims invite but do not include). Reported: mean
// latency/optimal ratios on 2 GPUs.
func BenchmarkOptimalityGap(b *testing.B) {
	var lpGap, mrGap float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.OptimalityGap(5, 18)
		if err != nil {
			b.Fatal(err)
		}
		lpGap, _ = fig.At(experiments.AlgoInterLP, 2)
		mrGap, _ = fig.At(experiments.AlgoInterMR, 2)
	}
	b.ReportMetric(lpGap, "lp/opt@2gpus")
	b.ReportMetric(mrGap, "mr/opt@2gpus")
}

// BenchmarkClusterStudy measures the value of topology awareness on a
// 2x2 two-level cluster (an extension of the paper's SMP setting).
// Reported: topology-aware vs topology-blind HIOS-LP latency at an 8x
// inter-node cost factor.
func BenchmarkClusterStudy(b *testing.B) {
	var aware, blind float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.ClusterStudy(experiments.SimOptions{Seeds: 2, GPUs: 4})
		if err != nil {
			b.Fatal(err)
		}
		aware, _ = fig.At("hios-lp-topology-aware", 8)
		blind, _ = fig.At("hios-lp-topology-blind", 8)
	}
	b.ReportMetric(aware, "aware-ms@8x")
	b.ReportMetric(blind, "blind-ms@8x")
}

// BenchmarkAblationIntraGPU compares Algorithm 2 against per-GPU exact
// IOS (the §IV-B counterfactual) on top of the same inter-GPU LP
// placement. Reported: the mean latencies of both strategies.
func BenchmarkAblationIntraGPU(b *testing.B) {
	var alg2, perGPU float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.AblationIntraGPU(experiments.SimOptions{Seeds: 2, GPUs: 4})
		if err != nil {
			b.Fatal(err)
		}
		alg2, _ = fig.At("algorithm-2", 1)
		perGPU, _ = fig.At("per-gpu-ios", 2)
	}
	b.ReportMetric(alg2, "alg2-ms")
	b.ReportMetric(perGPU, "per-gpu-ios-ms")
}

// BenchmarkFig14SchedulingCost regenerates Fig. 14: the time cost of
// scheduling optimization over input sizes. Reported: the IOS/HIOS-LP
// cost ratio at 1024px Inception (the paper's IOS curve grows much
// faster).
func BenchmarkFig14SchedulingCost(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig14(experiments.Inception, []int{299, 1024})
		if err != nil {
			b.Fatal(err)
		}
		ios, _ := fig.At(experiments.AlgoIOS, 1024)
		lp, _ := fig.At(experiments.AlgoHIOSLP, 1024)
		ratio = ios / lp
	}
	b.ReportMetric(ratio, "ios-over-lp-cost@1024")
}
