package hios_test

// Width-equivalence goldens: the allocation burn-down of the LP, MR and
// window hot paths (DESIGN.md "Hot-path allocation discipline") must not
// change a single byte of any schedule. These tests pin the serialized
// output of every algorithm on fixed random models against golden files
// captured from the pre-burn-down implementations; any divergence means a
// "pure optimization" altered scheduling decisions.
//
// Regenerate (only when an intentional algorithmic change is made) with:
//
//	HIOS_UPDATE_GOLDENS=1 go test -run TestGoldenSchedules .

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	hios "github.com/shus-lab/hios"
)

type goldenConfig struct {
	ops, layers, deps int
	seed              int64
	gpus              int
}

// goldenConfigs covers a small 2-GPU and a wider 4-GPU instance; both are
// sized so the full six-algorithm sweep stays in test-suite budget.
var goldenConfigs = []goldenConfig{
	{ops: 60, layers: 8, deps: 120, seed: 7, gpus: 2},
	{ops: 100, layers: 10, deps: 200, seed: 13, gpus: 4},
}

func goldenPath(algo hios.Algorithm, c goldenConfig) string {
	return filepath.Join("testdata", "goldens",
		fmt.Sprintf("%s_s%d_g%d.json", algo, c.seed, c.gpus))
}

func goldenSchedule(t *testing.T, algo hios.Algorithm, c goldenConfig) []byte {
	t.Helper()
	cfg := hios.RandomModelDefaults()
	cfg.Ops = c.ops
	cfg.Layers = c.layers
	cfg.Deps = c.deps
	cfg.Seed = c.seed
	g, err := hios.RandomModel(cfg)
	if err != nil {
		t.Fatalf("RandomModel: %v", err)
	}
	m := hios.DefaultCostModel(g)
	res, err := hios.Optimize(g, m, algo, hios.Options{GPUs: c.gpus})
	if err != nil {
		t.Fatalf("Optimize(%s): %v", algo, err)
	}
	data, err := hios.ExportJSON(g, res.Schedule, "goldens", algo, res.Latency)
	if err != nil {
		t.Fatalf("ExportJSON(%s): %v", algo, err)
	}
	return data
}

func TestGoldenSchedules(t *testing.T) {
	update := os.Getenv("HIOS_UPDATE_GOLDENS") != ""
	for _, c := range goldenConfigs {
		for _, algo := range hios.Algorithms() {
			t.Run(fmt.Sprintf("%s/s%d_g%d", algo, c.seed, c.gpus), func(t *testing.T) {
				got := goldenSchedule(t, algo, c)
				path := goldenPath(algo, c)
				if update {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, got, 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden %s (regenerate with HIOS_UPDATE_GOLDENS=1): %v", path, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%s schedule diverged from golden %s: an optimization changed scheduling decisions (run with HIOS_UPDATE_GOLDENS=1 only if the change is intentional)", algo, path)
				}
			})
		}
	}
}
